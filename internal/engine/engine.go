// Package engine implements the distributed bulk-synchronous-parallel
// substrate that both the interval-centric model (internal/core) and the
// vertex-centric baselines (internal/vcm) run on. It plays the role Apache
// Giraph plays for GRAPHITE in the paper: hash-partitioned vertex ownership
// across workers, superstep execution with global barriers, bulk message
// exchange with optional receiver-side combining, named aggregators, a
// master-compute hook, and vote-to-halt semantics where vertices are only
// reactivated by incoming messages.
//
// Workers are goroutines; partitioning, message routing, byte accounting and
// barrier timing mirror a distributed deployment so that the experiment
// metrics (compute+ time, exclusive messaging time, message bytes) are
// meaningful.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

// Message is the engine-level message envelope: a payload valid for a
// time-interval, addressed to a dense vertex index. Non-temporal platforms
// use a fixed interval.
type Message struct {
	Dst   int32
	When  ival.Interval
	Value any
}

// Program is the per-vertex logic a platform layers over the engine.
type Program interface {
	// Init runs once for every vertex before superstep 1.
	Init(ctx *Context)
	// Run executes one superstep for an active vertex with its inbox. The
	// msgs slice is only valid for the duration of the call: its backing
	// buffer is pooled and recycled for a later superstep as soon as Run
	// returns, so implementations must copy anything they keep.
	Run(ctx *Context, msgs []Message)
}

// Master receives control between supersteps, after aggregators are merged;
// it can read aggregates, switch phases and halt the computation.
type Master interface {
	BeforeSuperstep(mc *MasterControl)
}

// Combiner merges two message payloads addressed to the same vertex for the
// same interval (receiver-side combining). It must be commutative and
// associative.
type Combiner interface {
	Combine(a, b any) any
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(a, b any) any

// Combine implements Combiner.
func (f CombinerFunc) Combine(a, b any) any { return f(a, b) }

// Config parameterizes a run.
type Config struct {
	// NumWorkers is the number of BSP workers ("machines"). Zero means
	// GOMAXPROCS.
	NumWorkers int
	// MaxSupersteps bounds the run; zero means no bound.
	MaxSupersteps int
	// ActivateAll keeps every vertex active in every superstep (PageRank
	// style); the run then ends via MaxSupersteps or a master halt.
	ActivateAll bool
	// Partitioner assigns each dense vertex index to a worker; nil means
	// modulo hashing (Giraph's default hash partitioner). Exploring
	// partitioning strategies is the paper's stated future work; the seam
	// makes locality experiments possible.
	Partitioner func(vertex, numWorkers int) int
	// Steal enables chunked work stealing in the compute phase: each
	// worker's active frontier is cut into fixed-size chunks and idle
	// workers claim chunks from the most-loaded peers. Stolen chunks emit
	// into per-chunk outbox lanes merged in deterministic (owner, slot)
	// order at the barrier, so results are byte-identical with stealing on
	// or off; only per-worker phase attribution in traces becomes
	// timing-dependent.
	Steal bool
	// StealChunk is the number of frontier slots per stealable chunk; zero
	// means DefaultStealChunk. Only meaningful with Steal.
	StealChunk int
	// Combiner, if set, merges payloads of messages to the same vertex
	// with identical intervals at delivery time.
	Combiner Combiner
	// PayloadCodec, when set, is used to account encoded payload bytes and,
	// with VerifyCodec, to round-trip payloads crossing worker boundaries.
	PayloadCodec codec.Payload
	// VerifyCodec makes every cross-worker message round-trip through
	// PayloadCodec, as on a real wire. Requires PayloadCodec.
	VerifyCodec bool
	// Transport, when set, routes every cross-worker batch through it
	// (e.g. TCPTransport's loopback mesh), fully serialized. Requires
	// PayloadCodec.
	Transport Transport
	// Master is the optional master-compute hook.
	Master Master
	// CheckpointEvery, when > 0, captures a recovery point after every k-th
	// superstep barrier (plus one before superstep 1): user vertex state via
	// the Snapshotter contract, inboxes, active flags, merged aggregates and
	// metrics. A failed superstep — user-program panic, codec failure or
	// transport error — then rolls back to the latest checkpoint and replays
	// instead of aborting the run. Requires the Program to implement
	// Snapshotter. Masters are re-invoked on replayed supersteps and must
	// tolerate that (the replayed aggregates they see are identical).
	CheckpointEvery int
	// MaxRecoveries bounds rollback-and-replay attempts per run; zero means
	// DefaultMaxRecoveries. Only meaningful with CheckpointEvery > 0.
	MaxRecoveries int
	// SendRetries is how many times a failed Transport.Send is retried (with
	// capped exponential backoff) before the superstep is declared failed.
	// Zero means DefaultSendRetries; negative disables retries.
	SendRetries int
	// Tracer, when set, receives the typed per-superstep event stream:
	// run/superstep lifecycle, per-worker phase timings, checkpoint, recovery
	// and send-retry events. Lifecycle events are emitted from the
	// coordinating goroutine in deterministic order; only send-retry events
	// fire from workers. Nil disables tracing with no overhead on the send
	// path.
	Tracer obs.Tracer
	// Registry, when set, is where the engine publishes its counters and
	// histograms (e.g. for the /debug/vars endpoint); nil gives the engine a
	// private registry. The Metrics Run returns are a per-run view over it.
	Registry *obs.Registry
	// Context, when set, makes the run cancellable: workers stop claiming
	// vertices as soon as they observe cancellation, and Run aborts at the
	// next superstep barrier with an error wrapping ErrCanceled. Cancellation
	// is an external abort, never a recoverable fault — it bypasses
	// checkpoint rollback-and-replay. Nil means the run cannot be canceled.
	Context context.Context
	// Span, when set, is the run-scoped span ID (obs.NewSpanID) minted by
	// whoever admitted this query — graphite-serve, a CLI, or the cluster
	// coordinator. It is stamped on the trace's run_start so the run can be
	// correlated across process boundaries; empty leaves the trace unscoped.
	Span string
}

// Fault-tolerance defaults.
const (
	// DefaultMaxRecoveries is the rollback-and-replay budget per run when
	// Config.MaxRecoveries is zero.
	DefaultMaxRecoveries = 3
	// DefaultSendRetries is the per-batch Transport.Send retry budget when
	// Config.SendRetries is zero.
	DefaultSendRetries = 2
	// sendRetryBackoff is the initial delay between Send retries; it doubles
	// per attempt, capped at 16x, with equal jitter (see RetryDelay).
	sendRetryBackoff = 2 * time.Millisecond
)

// Errors reported by Run.
var (
	ErrNoVertices = errors.New("engine: graph has no vertices")
	ErrBadConfig  = errors.New("engine: invalid configuration")
)

// Engine executes a Program over a vertex set.
type Engine struct {
	cfg      Config
	program  Program
	numV     int
	workers  []*worker
	aggs     map[string]*Aggregator
	aggVals  map[string]any // merged values from the previous superstep
	part     []int32        // vertex -> worker
	slot     []int32        // vertex -> local slot within its worker
	phase    int
	halted   bool
	superstp int

	stealOn   bool // Config.Steal, resolved
	chunkSize int  // Config.StealChunk, resolved

	// Observability: totals live in the registry; Metrics is a per-run view
	// over it (registry value minus the Run-start baseline).
	reg    *obs.Registry
	ec     engCounters
	base   Metrics
	tracer obs.Tracer
	traced bool

	errMu  sync.Mutex
	runErr error       // first failure of the current superstep
	hasErr atomic.Bool // lock-free mirror of runErr != nil

	ctx context.Context // nil when the run is not cancellable

	ckpt        *checkpoint // latest recovery point
	checkpoints int
	recoveries  int
}

// worker owns the vertices with index ≡ id (mod numWorkers).
type worker struct {
	id     int
	eng    *Engine
	local  []int32     // dense vertex indices owned by this worker
	inbox  []*msgSlab  // per local slot; arena-pooled, nil when empty
	active []bool      // per local slot; dedup bitmap behind the frontier
	outbox [][]Message // per destination worker, refilled every superstep

	// Dense frontier: slots activated since the last compute phase, appended
	// at delivery time (activation order), sorted at compute start. Grow-only.
	frontier []int32
	allSlots []int32 // lazily built 0..len(local)-1 schedule for ActivateAll
	sched    []int32 // slot list the in-flight compute phase iterates

	// Chunked work stealing (Config.Steal): this worker's stealable chunks
	// over sched, claimed through the atomic cursor by any worker.
	chunks  []chunk
	nchunks int
	cursor  atomic.Int32

	// Per-worker metric partials, merged after every superstep.
	computeCalls int64
	scatterCalls int64
	sentMsgs     int64
	sentBytes    int64
	classBytes   [codec.NumIntervalClasses]int64 // interval bytes by encoding class

	// Per-phase observations for the superstep in flight: each worker
	// records into its own fields; the coordinator reads them after the
	// phase barrier (workers are quiescent then), so no synchronization.
	computeNS  int64
	stealNS    int64 // compute-phase idle-wait at the steal barrier
	steals     int64 // chunks this worker executed for other workers
	shipNS     int64
	exchangeNS int64
	delivered  int64

	scratch []byte    // payload sizing buffer, reused across sends
	decode  []Message // transport decode buffer, reused across batches

	// cctx is the worker's persistent compute Context: &cctx escapes into
	// Program.Run through the interface call, and a per-phase local would
	// heap-allocate once per worker per superstep. Only the goroutine
	// executing as this worker touches it.
	cctx Context
}

// New prepares an engine for numVertices vertices.
func New(numVertices int, program Program, cfg Config) (*Engine, error) {
	if numVertices <= 0 {
		return nil, ErrNoVertices
	}
	if program == nil {
		return nil, fmt.Errorf("%w: nil program", ErrBadConfig)
	}
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.NumWorkers > numVertices {
		cfg.NumWorkers = numVertices
	}
	if cfg.VerifyCodec && cfg.PayloadCodec == nil {
		return nil, fmt.Errorf("%w: VerifyCodec requires PayloadCodec", ErrBadConfig)
	}
	if cfg.Transport != nil && cfg.PayloadCodec == nil {
		return nil, fmt.Errorf("%w: Transport requires PayloadCodec", ErrBadConfig)
	}
	if cfg.CheckpointEvery > 0 {
		if _, ok := program.(Snapshotter); !ok {
			return nil, fmt.Errorf("%w: CheckpointEvery requires a Program implementing Snapshotter", ErrBadConfig)
		}
	}
	if cfg.StealChunk < 0 {
		return nil, fmt.Errorf("%w: StealChunk must be >= 0", ErrBadConfig)
	}
	if cfg.StealChunk == 0 {
		cfg.StealChunk = DefaultStealChunk
	}
	e := &Engine{
		cfg:     cfg,
		program: program,
		numV:    numVertices,
		aggs:    map[string]*Aggregator{},
		aggVals: map[string]any{},
		part:    make([]int32, numVertices),
		slot:    make([]int32, numVertices),
		tracer:  cfg.Tracer,
		traced:  cfg.Tracer != nil,
		ctx:     cfg.Context,
	}
	e.stealOn = cfg.Steal
	e.chunkSize = cfg.StealChunk
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.bindRegistry(reg)
	part := cfg.Partitioner
	if part == nil {
		part = func(v, n int) int { return v % n }
	}
	e.workers = make([]*worker, cfg.NumWorkers)
	for w := range e.workers {
		e.workers[w] = &worker{id: w, eng: e, outbox: make([][]Message, cfg.NumWorkers)}
	}
	for v := 0; v < numVertices; v++ {
		w := part(v, cfg.NumWorkers)
		if w < 0 || w >= cfg.NumWorkers {
			return nil, fmt.Errorf("%w: partitioner sent vertex %d to worker %d of %d",
				ErrBadConfig, v, w, cfg.NumWorkers)
		}
		wk := e.workers[w]
		e.part[v] = int32(w)
		e.slot[v] = int32(len(wk.local))
		wk.local = append(wk.local, int32(v))
	}
	for _, wk := range e.workers {
		wk.inbox = make([]*msgSlab, len(wk.local))
		wk.active = make([]bool, len(wk.local))
	}
	return e, nil
}

// RegisterAggregator installs a named aggregator before Run.
func (e *Engine) RegisterAggregator(name string, agg *Aggregator) {
	e.aggs[name] = agg
}

// owner returns the worker id and local slot for a vertex index.
func (e *Engine) owner(v int32) (wid, slot int) {
	return int(e.part[v]), int(e.slot[v])
}

// Run executes supersteps until no vertex is active and no messages are in
// flight (or the master halts, or MaxSupersteps is reached), and returns the
// run metrics. Panics escaping user Program code are recovered and surfaced
// as a *VertexPanicError; with CheckpointEvery set, failed supersteps are
// rolled back to the latest checkpoint and replayed instead. When
// Config.Context is canceled the run aborts at the next superstep barrier
// with an error wrapping ErrCanceled, leaving no goroutines behind.
func (e *Engine) Run() (*Metrics, error) {
	start := time.Now()
	e.base = e.rawView()
	if e.traced {
		e.tracer.Emit(obs.RunStart{
			Vertices:    e.numV,
			Workers:     len(e.workers),
			Checkpoints: e.cfg.CheckpointEvery > 0,
			Span:        e.cfg.Span,
		})
	}

	// Superstep 1 initialization: Init on every vertex, all active.
	e.superstp = 1
	e.parallel(func(w *worker) {
		ctx := Context{eng: e, w: w}
		for slot, v := range w.local {
			if e.aborted() {
				return
			}
			ctx.vertex = v
			ctx.slot = slot
			w.activate(slot)
			if !e.guardedCall(int(v), func() { e.program.Init(&ctx) }) {
				return
			}
		}
	})
	if err := e.canceled(); err != nil {
		return nil, err
	}
	if err := e.takeErr(); err != nil {
		// No checkpoint can exist yet: an Init failure is terminal.
		return nil, err
	}
	if e.cfg.CheckpointEvery > 0 {
		e.capture()
	}

	for {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		if e.cfg.MaxSupersteps > 0 && e.superstp > e.cfg.MaxSupersteps {
			break
		}
		// Master compute with the previous superstep's aggregates.
		if e.cfg.Master != nil {
			mc := MasterControl{eng: e}
			e.cfg.Master.BeforeSuperstep(&mc)
			if mc.halt {
				e.halted = true
				break
			}
		}

		if e.traced {
			e.tracer.Emit(obs.SuperstepStart{Superstep: e.superstp, Active: e.countActive()})
		}

		// Compute phase: user logic over the dense active frontier,
		// interleaved with message emission into outboxes ("compute+" in the
		// paper). With stealing, three sub-barriers: cut every frontier into
		// chunks, execute chunks (own first, then stolen), then merge chunk
		// lanes into the real outboxes in deterministic (owner, slot) order.
		t0 := time.Now()
		if e.stealOn {
			e.parallel(func(w *worker) { w.prepareChunks() })
			e.parallel(func(w *worker) { w.runChunks() })
			e.parallel(func(w *worker) { w.mergeChunks() })
		} else {
			e.parallel(func(w *worker) { w.computeStatic() })
		}
		t1 := time.Now()
		// Cancellation wins over a concurrent fault: the run is being torn
		// down either way, and rollback must never replay a canceled phase.
		if err := e.canceled(); err != nil {
			return nil, err
		}
		if e.failed() {
			// A compute failure leaves no frames in flight: rollback never
			// needs a transport reset here.
			if e.rollback(false) {
				continue
			}
			return nil, e.takeErr()
		}
		if e.traced {
			// Worker partials hold exactly the compute phase's deltas here:
			// they were reset at the previous barrier and the exchange phase
			// does not touch them.
			e.emitWorkerPhases("compute")
		}

		// Messaging phase: exclusive message delivery after compute.
		delivered := e.exchange()
		t2 := time.Now()

		// A failed exchange is checked before the barrier merge so a partial
		// superstep's metrics are never folded into the totals.
		if err := e.canceled(); err != nil {
			return nil, err
		}
		if e.failed() {
			if e.rollback(true) {
				continue
			}
			return nil, e.takeErr()
		}
		if e.traced {
			if e.cfg.Transport != nil {
				e.emitWorkerPhases("ship")
			}
			e.emitWorkerPhases("exchange")
		}

		// Barrier: merge aggregators and metric partials into the registry.
		e.mergeAggregates()
		st := e.mergePartials()
		t3 := time.Now()

		computeD, messagingD, barrierD := t1.Sub(t0), t2.Sub(t1), t3.Sub(t2)
		e.ec.computeNS.Add(computeD.Nanoseconds())
		e.ec.messagingNS.Add(messagingD.Nanoseconds())
		e.ec.barrierNS.Add(barrierD.Nanoseconds())
		e.ec.hCompute.Observe(computeD)
		e.ec.hMessaging.Observe(messagingD)
		e.ec.hBarrier.Observe(barrierD)
		e.ec.supersteps.Inc()
		e.setPoolGauges()
		e.setSchedulerGauges()
		if e.traced {
			e.tracer.Emit(obs.SuperstepEnd{
				Superstep:    e.superstp,
				ComputeNS:    computeD.Nanoseconds(),
				MessagingNS:  messagingD.Nanoseconds(),
				BarrierNS:    barrierD.Nanoseconds(),
				ComputeCalls: st.computeCalls,
				ScatterCalls: st.scatterCalls,
				Messages:     st.sentMsgs,
				MessageBytes: st.sentBytes,
				Delivered:    delivered,
				Active:       e.countActive(),
				Steals:       st.steals,
				Intervals: obs.IntervalBytes{
					Unit:      st.classBytes[codec.ClassUnit],
					Unbounded: st.classBytes[codec.ClassUnbounded],
					General:   st.classBytes[codec.ClassGeneral],
					Empty:     st.classBytes[codec.ClassEmpty],
				},
			})
		}
		e.superstp++

		if e.cfg.CheckpointEvery > 0 && (e.superstp-1)%e.cfg.CheckpointEvery == 0 {
			e.capture()
		}
		if delivered == 0 && !e.anyActive() && !e.cfg.ActivateAll {
			break
		}
		if delivered == 0 && e.cfg.ActivateAll && e.cfg.MaxSupersteps == 0 && e.cfg.Master == nil {
			// Nothing can ever change again and nothing will stop us.
			return nil, fmt.Errorf("%w: ActivateAll needs MaxSupersteps or a Master", ErrBadConfig)
		}
	}
	// Return undelivered inbox slabs (MaxSupersteps can end a run with
	// messages still queued) to the arena for the next run.
	for _, w := range e.workers {
		for s, sl := range w.inbox {
			if sl != nil {
				w.inbox[s] = nil
				msgArena.put(sl)
			}
		}
	}
	e.ec.makespanNS.Store(time.Since(start).Nanoseconds())
	e.setPoolGauges()
	m := e.metricsView()
	if e.traced {
		e.tracer.Emit(obs.RunEnd{
			Supersteps:   m.Supersteps,
			ComputeCalls: m.ComputeCalls,
			ScatterCalls: m.ScatterCalls,
			Messages:     m.Messages,
			MessageBytes: m.MessageBytes,
			Checkpoints:  m.Checkpoints,
			Recoveries:   m.Recoveries,
			ComputeNS:    int64(m.ComputePlusTime),
			MessagingNS:  int64(m.MessagingTime),
			BarrierNS:    int64(m.BarrierTime),
			MakespanNS:   int64(m.Makespan),
			Halted:       e.halted,
		})
	}
	return &m, nil
}

// fail records the first failure of the current superstep.
func (e *Engine) fail(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
		e.hasErr.Store(true)
	}
	e.errMu.Unlock()
}

// failed reports whether the current superstep has failed; workers use it to
// stop early instead of computing doomed vertices.
func (e *Engine) failed() bool { return e.hasErr.Load() }

// canceled returns the typed cancellation error once Config.Context is done,
// else nil. Only the coordinating goroutine calls it, at barriers.
func (e *Engine) canceled() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return fmt.Errorf("%w at superstep %d: %v", ErrCanceled, e.superstp, e.ctx.Err())
	default:
		return nil
	}
}

// aborted reports whether workers should stop claiming vertices: either the
// superstep has failed or the run's context was canceled. The phase still
// runs to its barrier, where the coordinator surfaces the typed error.
func (e *Engine) aborted() bool {
	if e.hasErr.Load() {
		return true
	}
	if e.ctx != nil {
		select {
		case <-e.ctx.Done():
			return true
		default:
		}
	}
	return false
}

// takeErr returns the recorded failure, if any.
func (e *Engine) takeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.runErr
}

// clearErr resets the failure state after a successful rollback.
func (e *Engine) clearErr() {
	e.errMu.Lock()
	e.runErr = nil
	e.hasErr.Store(false)
	e.errMu.Unlock()
}

// guardedCall runs one user-program invocation for a vertex, converting an
// escaping panic into a *VertexPanicError recorded as the superstep failure;
// it reports whether fn completed normally.
func (e *Engine) guardedCall(vertex int, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.fail(&VertexPanicError{
				Vertex:    vertex,
				Superstep: e.superstp,
				Value:     r,
				Stack:     debug.Stack(),
			})
		}
	}()
	fn()
	return true
}

// parallel runs fn once per worker, concurrently, and waits for all. A panic
// escaping fn itself (engine bugs, codec paths outside guardedCall) is
// recovered as a run failure rather than killing the process.
func (e *Engine) parallel(fn func(*worker)) {
	var wg sync.WaitGroup
	wg.Add(len(e.workers))
	for _, w := range e.workers {
		go func(w *worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.fail(&VertexPanicError{
						Vertex:    -1,
						Superstep: e.superstp,
						Value:     r,
						Stack:     debug.Stack(),
					})
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// exchange moves all outbox batches to destination inboxes, applying the
// receiver-side combiner, and returns the number of delivered messages.
func (e *Engine) exchange() int64 {
	if e.cfg.Transport != nil {
		return e.exchangeTransport()
	}
	e.parallel(func(dst *worker) { dst.exchangeLocal() })
	return e.sumDelivered()
}

// exchangeLocal is one worker's in-memory exchange phase: it gathers the
// batches every source worker addressed to it and delivers them into its
// own inbox slabs. Separated from the goroutine fan-out so the alloc gate
// can measure the data path itself; at steady state it must not allocate.
func (w *worker) exchangeLocal() {
	e := w.eng
	phaseStart := time.Now()
	var n int64
	defer func() {
		w.delivered = n
		w.exchangeNS = time.Since(phaseStart).Nanoseconds()
	}()
	// Gather batches addressed to this worker from every source worker, in
	// worker order for determinism.
	for _, src := range e.workers {
		batch := src.outbox[w.id]
		if len(batch) == 0 {
			continue
		}
		crossWorker := src.id != w.id
		for _, m := range batch {
			if crossWorker && e.cfg.VerifyCodec {
				rv, err := e.roundTrip(w, m.Value)
				if err != nil {
					e.fail(err)
					return
				}
				m.Value = rv
			}
			_, slot := e.eownerSlot(m.Dst)
			w.deliver(slot, m)
			n++
		}
		src.outbox[w.id] = src.outbox[w.id][:0]
	}
}

// sumDelivered folds the per-worker delivery counts after an exchange phase
// barrier; workers are quiescent, so plain reads suffice.
func (e *Engine) sumDelivered() int64 {
	var n int64
	for _, w := range e.workers {
		n += w.delivered
	}
	return n
}

func (e *Engine) eownerSlot(v int32) (int, int) { return e.owner(v) }

// exchangeTransport is the exchange phase over a real transport: every
// cross-worker batch is serialized, shipped, and decoded on the far side;
// same-worker batches are delivered directly, as they never leave the node.
func (e *Engine) exchangeTransport() int64 {
	// Ship phase. A failed Send is retried with capped exponential backoff
	// before the superstep is declared failed: transient faults (a dropped
	// frame, a congested peer) should not force a rollback.
	e.parallel(func(src *worker) {
		phaseStart := time.Now()
		defer func() { src.shipNS = time.Since(phaseStart).Nanoseconds() }()
		for dst := range e.workers {
			if dst == src.id {
				continue
			}
			// Encode into a pooled slab; Transport.Send must not retain the
			// batch (see the Transport contract), so the slab can go straight
			// back to the pool for the next destination.
			slab := batchSlabs.Get()
			slab.Buf = encodeBatch(slab.Buf, src.outbox[dst], e.cfg.PayloadCodec)
			err := e.sendWithRetry(src.id, dst, slab.Buf)
			batchSlabs.Put(slab)
			if err != nil {
				e.fail(err)
			}
			src.outbox[dst] = src.outbox[dst][:0]
		}
	})
	// Receive phase.
	e.parallel(func(dst *worker) {
		phaseStart := time.Now()
		var n int64
		defer func() {
			dst.delivered = n
			dst.exchangeNS = time.Since(phaseStart).Nanoseconds()
		}()
		for _, m := range dst.outbox[dst.id] {
			_, slot := e.owner(m.Dst)
			dst.deliver(slot, m)
			n++
		}
		dst.outbox[dst.id] = dst.outbox[dst.id][:0]
		batches, err := e.cfg.Transport.Recv(dst.id)
		if err != nil {
			e.fail(err)
			return
		}
		for _, b := range batches {
			msgs, err := decodeBatchInto(dst.decode[:0], b, e.cfg.PayloadCodec)
			dst.decode = msgs[:0]
			if err != nil {
				e.fail(err)
				return
			}
			for _, m := range msgs {
				_, slot := e.owner(m.Dst)
				dst.deliver(slot, m)
				n++
			}
		}
		// Drop payload references so the reusable decode buffer never pins
		// the last batch's values across supersteps.
		clear(dst.decode[:cap(dst.decode)])
	})
	return e.sumDelivered()
}

// deliver appends or combines a message into a local inbox slab and marks
// the vertex active. Slabs come from the arena on first delivery and go
// back right after the vertex's Run call consumes them.
func (w *worker) deliver(slot int, m Message) {
	sl := w.inbox[slot]
	if sl == nil {
		sl = msgArena.get()
		w.inbox[slot] = sl
	}
	if c := w.eng.cfg.Combiner; c != nil {
		for i := range sl.msgs {
			if sl.msgs[i].When == m.When {
				sl.msgs[i].Value = c.Combine(sl.msgs[i].Value, m.Value)
				w.activate(slot)
				return
			}
		}
	}
	sl.msgs = append(sl.msgs, m)
	w.activate(slot)
}

// sendWithRetry ships one batch, retrying transient failures per
// Config.SendRetries before giving up.
func (e *Engine) sendWithRetry(src, dst int, batch []byte) error {
	retries := e.cfg.SendRetries
	switch {
	case retries == 0:
		retries = DefaultSendRetries
	case retries < 0:
		retries = 0
	}
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			// Capped exponential backoff with equal jitter: concurrent workers
			// retrying a congested peer must not re-collide in lockstep.
			time.Sleep(RetryDelay(sendRetryBackoff, attempt, 16*sendRetryBackoff))
		}
		if err = e.cfg.Transport.Send(src, dst, batch); err == nil {
			return nil
		}
		// Retry accounting fires from worker goroutines: the counter is
		// atomic and tracers are required to be concurrency-safe. superstp
		// is stable here (only mutated at barriers).
		e.ec.sendRetries.Inc()
		if e.traced {
			e.tracer.Emit(obs.SendRetry{
				Superstep: e.superstp,
				Src:       src,
				Dst:       dst,
				Attempt:   attempt + 1,
				Error:     err.Error(),
			})
		}
	}
	return fmt.Errorf("engine: send %d->%d failed after %d attempts: %w", src, dst, retries+1, err)
}

// roundTrip encodes and decodes a payload through the configured codec,
// as a real wire would, using the calling worker's scratch buffer. A codec
// failure is a superstep failure, not a process-killing panic.
func (e *Engine) roundTrip(w *worker, v any) (any, error) {
	w.scratch = e.cfg.PayloadCodec.Append(w.scratch[:0], v)
	out, _, err := e.cfg.PayloadCodec.Decode(w.scratch)
	if err != nil {
		return nil, fmt.Errorf("engine: payload codec round-trip failed: %w", err)
	}
	return out, nil
}

// anyActive reports whether any vertex was activated since the last compute
// phase; O(workers), from the frontier lengths maintained at delivery time.
func (e *Engine) anyActive() bool {
	for _, w := range e.workers {
		if len(w.frontier) > 0 {
			return true
		}
	}
	return false
}

// mergeAggregates folds the per-worker aggregator partials into the values
// visible to the master and to vertices in the next superstep.
func (e *Engine) mergeAggregates() {
	if len(e.aggs) == 0 {
		return
	}
	names := make([]string, 0, len(e.aggs))
	for n := range e.aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		agg := e.aggs[n]
		v := agg.drain()
		e.aggVals[n] = v
	}
}

// Superstep returns the 1-based current superstep (valid during Run).
func (e *Engine) Superstep() int { return e.superstp }

// Halted reports whether the master stopped the run.
func (e *Engine) Halted() bool { return e.halted }
