package engine

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"graphite/internal/codec"
)

// messageSize is the in-memory footprint of one Message, used to express
// arena reuse in bytes alongside the codec slab pool's byte counts.
const messageSize = int64(unsafe.Sizeof(Message{}))

// msgSlab is a pooled inbox buffer: the messages delivered to one vertex
// slot for one superstep. Slabs are handed out by the arena during the
// exchange phase and returned right after the vertex's Run call, so at
// steady state each superstep recycles the previous one's buffers instead
// of allocating.
type msgSlab struct {
	msgs []Message
}

// messageArena is a sync.Pool of message slabs with reuse statistics.
// The zero value is ready.
type messageArena struct {
	pool        sync.Pool
	hits        atomic.Int64
	misses      atomic.Int64
	bytesReused atomic.Int64
}

// get returns an empty slab, reusing a pooled one when available.
func (a *messageArena) get() *msgSlab {
	if v := a.pool.Get(); v != nil {
		s := v.(*msgSlab)
		a.hits.Add(1)
		a.bytesReused.Add(int64(cap(s.msgs)) * messageSize)
		s.msgs = s.msgs[:0]
		return s
	}
	a.misses.Add(1)
	return &msgSlab{}
}

// put returns a slab to the arena. Every element written since get is
// zeroed first: a pooled slab must never pin message payloads (the boxed
// `any` values) nor alias them into a later superstep — in particular,
// payloads decoded from a batch that fault injection corrupted die with
// the failed superstep instead of resurfacing from the pool.
func (a *messageArena) put(s *msgSlab) {
	if s == nil {
		return
	}
	clear(s.msgs)
	s.msgs = s.msgs[:0]
	a.pool.Put(s)
}

// stats reports cumulative arena behaviour; bytes are capacity handed back
// out by hits, in Message-footprint bytes.
func (a *messageArena) stats() (hits, misses, bytesReused int64) {
	return a.hits.Load(), a.misses.Load(), a.bytesReused.Load()
}

// The pools are package-level: sync.Pool is designed for global sharing
// (per-P caches, GC-aware), and sharing lets repeated runs — the serving
// layer, the bench warm-up/measure pairs — reach steady state immediately
// instead of re-growing buffers per engine.
var (
	// msgArena feeds worker inbox slabs.
	msgArena messageArena
	// batchSlabs feeds the encode buffers of the transport ship phase.
	batchSlabs codec.SlabPool
)

// poolStats folds the message arena and batch slab statistics into the
// totals the obs gauges publish.
func poolStats() (hits, misses, bytesReused int64) {
	h, m, b := msgArena.stats()
	h2, m2, b2 := batchSlabs.Stats()
	return h + h2, m + m2, b + b2
}
