package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The durability battery: every way a checkpoint file can be damaged on
// disk — truncation, flipped payload bytes, flipped CRC, deleted file, torn
// (uncommitted) write — must surface as a typed error and fall back to the
// previous generation, never load silently.

func mustSave(t *testing.T, s *CheckpointStore, gen, step int, data []byte) CheckpointMeta {
	t.Helper()
	meta, err := s.Save(gen, step, data)
	if err != nil {
		t.Fatalf("Save gen %d: %v", gen, err)
	}
	return meta
}

func TestCheckpointStoreRoundTrip(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("superstep state: hello interval world")
	meta := mustSave(t, s, 0, 1, want)
	if meta.Bytes != int64(len(want)) {
		t.Errorf("meta bytes = %d, want %d", meta.Bytes, len(want))
	}
	got, m2, err := s.Load(0)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, want) || m2.Superstep != 1 {
		t.Errorf("round trip mismatch: %q step %d", got, m2.Superstep)
	}

	// Reopen from disk: the manifest must rehydrate the same view.
	s2, err := OpenCheckpointStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = s2.LatestValid()
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("reopened LatestValid = %q, %v", got, err)
	}
}

func TestCheckpointStoreEmpty(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LatestValid(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty LatestValid err = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := s.Load(3); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Load of absent gen err = %v, want ErrNoCheckpoint", err)
	}
}

// corrupt applies fn to gen's file bytes and writes them back.
func corrupt(t *testing.T, s *CheckpointStore, gen int, fn func([]byte) []byte) {
	t.Helper()
	path := s.genPath(gen)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointStoreTruncated(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 0, 1, []byte("older but intact generation zero"))
	mustSave(t, s, 1, 3, []byte("newest generation, about to be cut short"))
	corrupt(t, s, 1, func(raw []byte) []byte { return raw[:len(raw)/2] })

	if _, _, err := s.Load(1); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("truncated Load err = %v, want ErrCheckpointCorrupt", err)
	}
	data, meta, err := s.LatestValid()
	if err != nil {
		t.Fatalf("LatestValid after truncation: %v", err)
	}
	if meta.Gen != 0 || !bytes.Equal(data, []byte("older but intact generation zero")) {
		t.Fatalf("fallback landed on gen %d (%q), want intact gen 0", meta.Gen, data)
	}
}

func TestCheckpointStoreBitFlip(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 0, 1, []byte("good"))
	mustSave(t, s, 1, 3, []byte("payload that will rot on disk"))
	// Flip one bit inside the payload (past the 12-byte header).
	corrupt(t, s, 1, func(raw []byte) []byte {
		raw[14] ^= 0x40
		return raw
	})
	if _, _, err := s.Load(1); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bit-flipped Load err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, meta, err := s.LatestValid(); err != nil || meta.Gen != 0 {
		t.Fatalf("fallback = gen %d, %v; want gen 0", meta.Gen, err)
	}
}

func TestCheckpointStoreCRCFieldFlip(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 0, 1, []byte("trailer CRC gets damaged instead of payload"))
	corrupt(t, s, 0, func(raw []byte) []byte {
		raw[len(raw)-1] ^= 0xff
		return raw
	})
	if _, _, err := s.Load(0); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("flipped-CRC Load err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, _, err := s.LatestValid(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("sole corrupt gen LatestValid err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointStoreBadMagic(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 0, 1, []byte("magic about to be stomped"))
	corrupt(t, s, 0, func(raw []byte) []byte {
		copy(raw, "JUNK")
		return raw
	})
	if _, _, err := s.Load(0); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bad-magic Load err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCheckpointStoreMissingFile(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 0, 1, []byte("survivor"))
	mustSave(t, s, 1, 3, []byte("about to vanish"))
	if err := os.Remove(s.genPath(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(1); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("missing-file Load err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, meta, err := s.LatestValid(); err != nil || meta.Gen != 0 {
		t.Fatalf("fallback = gen %d, %v; want gen 0", meta.Gen, err)
	}
}

// TestCheckpointStoreTornWrite simulates a crash between the temp-file
// write and the rename: the new generation must be invisible (the manifest
// never recorded it) and the previous generation still wins.
func TestCheckpointStoreTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 0, 1, []byte("committed before the crash"))

	crashed := errors.New("simulated kill at written stage")
	s.CommitHook = func(stage string) {
		if stage == "written" {
			panic(crashed)
		}
	}
	func() {
		defer func() {
			if r := recover(); r != crashed {
				t.Fatalf("recover = %v, want simulated crash", r)
			}
		}()
		s.Save(1, 3, []byte("never committed"))
	}()

	// A fresh process opens the same directory.
	s2, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	gens := s2.Generations()
	if len(gens) != 1 || gens[0].Gen != 0 {
		t.Fatalf("generations after torn write = %+v, want only gen 0", gens)
	}
	data, meta, err := s2.LatestValid()
	if err != nil || meta.Gen != 0 || !bytes.Equal(data, []byte("committed before the crash")) {
		t.Fatalf("LatestValid = gen %d %q, %v", meta.Gen, data, err)
	}
	// The orphan temp file may linger; it must never be loadable.
	if _, statErr := os.Stat(filepath.Join(dir, "ckpt-00000001.bin.tmp")); statErr != nil && !os.IsNotExist(statErr) {
		t.Fatal(statErr)
	}
}

func TestCheckpointStorePrune(t *testing.T) {
	s, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 6; g++ {
		mustSave(t, s, g, g*2+1, []byte{byte(g)})
	}
	if err := s.Prune(2); err != nil {
		t.Fatal(err)
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0].Gen != 4 || gens[1].Gen != 5 {
		t.Fatalf("after prune: %+v", gens)
	}
	if _, _, err := s.Load(3); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("pruned gen Load err = %v, want ErrNoCheckpoint", err)
	}
	if _, meta, err := s.LatestValid(); err != nil || meta.Gen != 5 {
		t.Fatalf("LatestValid after prune = gen %d, %v", meta.Gen, err)
	}
}
