//go:build race

package engine

// raceEnabled reports whether this test binary was built with -race; the
// allocation gates skip there because sync.Pool intentionally drops items at
// random under the race detector, making alloc counts meaningless.
const raceEnabled = true
