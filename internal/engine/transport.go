package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"graphite/internal/codec"
)

// Transport ships encoded message batches between workers during the
// exchange phase, standing in for the cluster network. Every worker sends
// exactly one batch (possibly empty) to every other worker per superstep;
// Recv returns one batch per peer. The in-process default (nil Transport)
// hands slices over directly; TCPTransport pushes every cross-worker batch
// through real loopback sockets, exercising the full serialization path.
type Transport interface {
	// Send ships an encoded batch from worker src to worker dst (src != dst).
	// The batch bytes belong to the caller and are pooled: Send must not
	// retain the slice after returning — an implementation that queues
	// frames must copy (the in-process chaos transport does; the TCP mesh
	// writes synchronously). A retained batch would alias a recycled slab
	// and ship a later superstep's bytes under this superstep's framing.
	Send(src, dst int, batch []byte) error
	// Recv returns the batches addressed to dst this superstep, one per
	// other worker, in ascending source order.
	Recv(dst int) ([][]byte, error)
	// Close releases the transport's resources.
	Close() error
}

// encodeBatch serializes messages: a uvarint count, then per message the
// destination index, the var-byte interval, and the codec-encoded payload.
func encodeBatch(buf []byte, msgs []Message, pc codec.Payload) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(msgs)))
	for _, m := range msgs {
		buf = binary.AppendUvarint(buf, uint64(m.Dst))
		buf = codec.AppendInterval(buf, m.When)
		buf = pc.Append(buf, m.Value)
	}
	return buf
}

// decodeBatch parses a batch produced by encodeBatch into a fresh slice.
func decodeBatch(buf []byte, pc codec.Payload) ([]Message, error) {
	return decodeBatchInto(nil, buf, pc)
}

// decodeBatchInto parses a batch produced by encodeBatch, appending into
// dst so the receive phase can reuse one grow-only buffer per worker. On
// error the returned slice holds the messages decoded so far.
func decodeBatchInto(dst []Message, buf []byte, pc codec.Payload) ([]Message, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return dst, fmt.Errorf("engine: corrupt batch header")
	}
	buf = buf[k:]
	out := dst
	for i := uint64(0); i < n; i++ {
		d, k := binary.Uvarint(buf)
		if k <= 0 {
			return out, fmt.Errorf("engine: corrupt message dst")
		}
		buf = buf[k:]
		when, k, err := codec.Interval(buf)
		if err != nil {
			return out, err
		}
		buf = buf[k:]
		val, k, err := pc.Decode(buf)
		if err != nil {
			return out, err
		}
		buf = buf[k:]
		out = append(out, Message{Dst: int32(d), When: when, Value: val})
	}
	return out, nil
}

// TCPTransport is a full mesh of loopback TCP connections between the
// workers of one engine: batches travel length-prefixed over real sockets.
// Each ordered worker pair (src, dst) has its own connection; the dialing
// side writes, the accepting side reads.
type TCPTransport struct {
	n         int
	send      [][]net.Conn // [src][dst]: dialer endpoints, written by src
	recv      [][]net.Conn // [src][dst]: accepted endpoints, read by dst
	lns       []net.Listener
	ioTimeout time.Duration
}

// TCPOptions tunes the loopback mesh's fault behaviour. The zero value
// selects the defaults below.
type TCPOptions struct {
	// IOTimeout bounds each Send write and each Recv frame read so a dead
	// peer surfaces as an error instead of a hung barrier; zero means
	// DefaultIOTimeout, negative disables deadlines.
	IOTimeout time.Duration
	// SetupTimeout bounds mesh construction — accepts and dials both; zero
	// means DefaultSetupTimeout.
	SetupTimeout time.Duration
	// DialAttempts is how many times each peer is dialed before setup fails;
	// transient ECONNREFUSED while peers are still binding is retried with
	// exponential backoff. Zero means DefaultDialAttempts.
	DialAttempts int
	// DialBackoff is the initial delay between dial attempts, doubling per
	// attempt and capped at 16x; zero means DefaultDialBackoff.
	DialBackoff time.Duration
}

// TCP mesh defaults.
const (
	DefaultIOTimeout    = 30 * time.Second
	DefaultSetupTimeout = 10 * time.Second
	DefaultDialAttempts = 5
	DefaultDialBackoff  = 5 * time.Millisecond
)

// NewTCPTransport wires n workers into a loopback mesh with default options.
func NewTCPTransport(n int) (*TCPTransport, error) {
	return NewTCPTransportOpts(n, TCPOptions{})
}

// NewTCPTransportOpts wires n workers into a loopback mesh.
func NewTCPTransportOpts(n int, opts TCPOptions) (*TCPTransport, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: transport needs at least one worker")
	}
	if opts.IOTimeout == 0 {
		opts.IOTimeout = DefaultIOTimeout
	}
	if opts.SetupTimeout <= 0 {
		opts.SetupTimeout = DefaultSetupTimeout
	}
	if opts.DialAttempts <= 0 {
		opts.DialAttempts = DefaultDialAttempts
	}
	if opts.DialBackoff <= 0 {
		opts.DialBackoff = DefaultDialBackoff
	}
	t := &TCPTransport{
		n:         n,
		send:      connMatrix(n),
		recv:      connMatrix(n),
		lns:       make([]net.Listener, n),
		ioTimeout: opts.IOTimeout,
	}
	deadline := time.Now().Add(opts.SetupTimeout)
	addrs := make([]string, n)
	for w := 0; w < n; w++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, err
		}
		// Accept deadline: a peer that never dials must fail setup, not hang
		// it forever.
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		t.lns[w] = ln
		addrs[w] = ln.Addr().String()
	}
	// Acceptors: worker w accepts one connection from every peer; the
	// 4-byte handshake identifies the dialer.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n-1; i++ {
				conn, err := t.lns[w].Accept()
				if err != nil {
					fail(err)
					return
				}
				conn.SetReadDeadline(deadline)
				var id [4]byte
				if _, err := io.ReadFull(conn, id[:]); err != nil {
					fail(err)
					return
				}
				conn.SetReadDeadline(time.Time{})
				src := int(binary.BigEndian.Uint32(id[:]))
				if src < 0 || src >= n || src == w {
					fail(fmt.Errorf("engine: bad handshake id %d at worker %d", src, w))
					return
				}
				mu.Lock()
				t.recv[src][w] = conn
				mu.Unlock()
			}
		}(w)
	}
	// Dialers, with capped exponential backoff on transient failures.
	for w := 0; w < n; w++ {
		for p := 0; p < n; p++ {
			if p == w {
				continue
			}
			conn, err := dialRetry(addrs[p], opts.DialAttempts, opts.DialBackoff, deadline)
			if err != nil {
				fail(err)
				continue
			}
			conn.SetWriteDeadline(deadline)
			var id [4]byte
			binary.BigEndian.PutUint32(id[:], uint32(w))
			if _, err := conn.Write(id[:]); err != nil {
				fail(err)
			}
			conn.SetWriteDeadline(time.Time{})
			t.send[w][p] = conn
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Close()
		return nil, firstErr
	}
	return t, nil
}

// dialRetry dials addr up to attempts times with capped exponential backoff
// and equal jitter (RetryDelay), never past deadline. The jitter keeps
// simultaneously-restarting workers from re-dialing a recovering peer in
// lockstep.
func dialRetry(addr string, attempts int, backoff time.Duration, deadline time.Time) (net.Conn, error) {
	capped := 16 * backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			pause := RetryDelay(backoff, i, capped)
			if time.Now().Add(pause).After(deadline) {
				break
			}
			time.Sleep(pause)
		}
		d := net.Dialer{Deadline: deadline}
		var conn net.Conn
		if conn, err = d.Dial("tcp", addr); err == nil {
			return conn, nil
		}
	}
	return nil, fmt.Errorf("engine: dial %s failed after %d attempts: %w", addr, attempts, err)
}

func connMatrix(n int) [][]net.Conn {
	m := make([][]net.Conn, n)
	for i := range m {
		m[i] = make([]net.Conn, n)
	}
	return m
}

// Send implements Transport with a 4-byte length prefix. A missing
// connection (failed dial, closed mesh) is a descriptive error, never a nil
// dereference; each write is bounded by the configured IO timeout.
func (t *TCPTransport) Send(src, dst int, batch []byte) error {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src == dst {
		return fmt.Errorf("engine: invalid send pair %d->%d in %d-worker mesh", src, dst, t.n)
	}
	conn := t.send[src][dst]
	if conn == nil {
		return fmt.Errorf("engine: no connection %d->%d (dial failed or mesh closed)", src, dst)
	}
	if t.ioTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(t.ioTimeout))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(batch)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(batch)
	return err
}

// Recv implements Transport: one frame per peer, ascending source order.
// Each frame read is bounded by the configured IO timeout so a dead peer
// cannot block the barrier forever.
func (t *TCPTransport) Recv(dst int) ([][]byte, error) {
	if dst < 0 || dst >= t.n {
		return nil, fmt.Errorf("engine: invalid recv worker %d in %d-worker mesh", dst, t.n)
	}
	var out [][]byte
	for src := 0; src < t.n; src++ {
		if src == dst {
			continue
		}
		conn := t.recv[src][dst]
		if conn == nil {
			return nil, fmt.Errorf("engine: no connection %d->%d (dial failed or mesh closed)", src, dst)
		}
		if t.ioTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.ioTimeout))
		}
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return nil, err
		}
		out = append(out, buf)
	}
	return out, nil
}

// Close shuts the mesh down.
func (t *TCPTransport) Close() error {
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, m := range [][][]net.Conn{t.send, t.recv} {
		for _, row := range m {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	}
	return nil
}
