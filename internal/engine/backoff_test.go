package engine

import (
	"testing"
	"time"
)

// TestRetryDelayBounds pins the jitter window: for every attempt the delay
// must lie in [d/2, d) where d is the capped deterministic backoff.
func TestRetryDelayBounds(t *testing.T) {
	base := 2 * time.Millisecond
	max := 16 * base
	for attempt := 1; attempt <= 12; attempt++ {
		d := base << (attempt - 1)
		if d > max {
			d = max
		}
		lo, hi := d/2, d
		if got := retryDelayAt(base, attempt, max, 0); got != lo {
			t.Errorf("attempt %d, r=0: got %v, want lower bound %v", attempt, got, lo)
		}
		if got := retryDelayAt(base, attempt, max, 0.999999); got < lo || got >= hi {
			t.Errorf("attempt %d, r→1: got %v, want in [%v, %v)", attempt, got, lo, hi)
		}
		for i := 0; i < 50; i++ {
			if got := RetryDelay(base, attempt, max); got < lo || got >= hi {
				t.Fatalf("attempt %d: RetryDelay = %v outside [%v, %v)", attempt, got, lo, hi)
			}
		}
	}
}

// TestRetryDelayCap verifies growth stops at max: far past the doubling
// horizon the window must still be [max/2, max).
func TestRetryDelayCap(t *testing.T) {
	base := 5 * time.Millisecond
	max := 16 * base
	got := retryDelayAt(base, 40, max, 0.5)
	if got < max/2 || got >= max {
		t.Fatalf("capped delay %v outside [%v, %v)", got, max/2, max)
	}
	// Uncapped: attempt 4 of base b is 8b, jitter window [4b, 8b).
	if got := retryDelayAt(base, 4, 0, 0); got != 4*base {
		t.Fatalf("uncapped attempt 4 lower bound = %v, want %v", got, 4*base)
	}
}

// TestRetryDelayDegenerate covers the no-wait cases.
func TestRetryDelayDegenerate(t *testing.T) {
	if got := retryDelayAt(0, 3, 0, 0.5); got != 0 {
		t.Errorf("zero base: got %v", got)
	}
	if got := retryDelayAt(time.Millisecond, 0, 0, 0.5); got != 0 {
		t.Errorf("attempt 0: got %v", got)
	}
}

// TestRetryDelayJitters is a sanity check that the randomized delays are
// not constant: 64 draws of a wide window should produce >1 distinct value.
func TestRetryDelayJitters(t *testing.T) {
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		seen[RetryDelay(time.Second, 5, time.Minute)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 jittered delays collapsed to %d distinct value(s)", len(seen))
	}
}
