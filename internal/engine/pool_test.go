package engine

import (
	"fmt"
	"sync"
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

// TestMessageArenaRecycles checks the arena contract: a recycled slab comes
// back empty but with its capacity intact, the hit/miss/bytes counters track
// the traffic, and put scrubs the slab so pooled memory never pins or aliases
// old payloads.
func TestMessageArenaRecycles(t *testing.T) {
	if raceEnabled {
		t.Skip("recycle contract skipped under -race: sync.Pool drops puts at random under the race detector")
	}
	var a messageArena
	s := a.get()
	if hits, misses, _ := a.stats(); hits != 0 || misses != 1 {
		t.Fatalf("first get: hits=%d misses=%d, want 0/1", hits, misses)
	}
	s.msgs = append(s.msgs, Message{Dst: 7, When: ival.Universe, Value: int64(12345)})
	wantCap := cap(s.msgs)
	a.put(s)

	s2 := a.get()
	if hits, misses, bytes := a.stats(); hits != 1 || misses != 1 || bytes != int64(wantCap)*messageSize {
		t.Fatalf("after recycle: hits=%d misses=%d bytes=%d, want 1/1/%d", hits, misses, bytes, int64(wantCap)*messageSize)
	}
	if len(s2.msgs) != 0 || cap(s2.msgs) != wantCap {
		t.Fatalf("recycled slab: len=%d cap=%d, want 0/%d", len(s2.msgs), cap(s2.msgs), wantCap)
	}
	// The retired contents must have been scrubbed: nothing poisoned (or
	// merely large) may survive in pooled memory.
	old := s2.msgs[:1][0]
	if old.Value != nil || old.Dst != 0 || old.When != (ival.Interval{}) {
		t.Fatalf("recycled slab still holds old message %+v", old)
	}
	a.put(s2)
	a.put(nil) // nil put is a harmless no-op
}

// chainProgram passes a token around a ring for a fixed number of supersteps,
// so every superstep delivers into — and recycles — inbox slabs.
type chainProgram struct {
	steps int
	n     int
}

func (p chainProgram) Init(*Context) {}

func (p chainProgram) Run(ctx *Context, msgs []Message) {
	if ctx.Superstep() < p.steps {
		ctx.Send((ctx.Vertex()+1)%p.n, ival.Universe, int64(1))
	}
}

// fanProgram stresses slab recycling: every vertex sends to its ring
// neighbour and to a shared hot vertex each superstep, with payloads encoding
// (superstep, sender). Each receiver checks that every delivered payload was
// sent in the immediately preceding superstep — a slab recycled while still
// referenced, or delivery aliasing a reused buffer, surfaces as a stale
// payload here (and as a report under -race).
type fanProgram struct {
	steps int
	n     int
	fail  func(format string, args ...any)
}

func (p fanProgram) Init(*Context) {}

func (p fanProgram) Run(ctx *Context, msgs []Message) {
	for _, m := range msgs {
		v := m.Value.(int64)
		if got, want := v/1000, int64(ctx.Superstep()-1); got != want {
			p.fail("vertex %d superstep %d: payload %d sent at superstep %d, want %d — pooled slab aliased",
				ctx.Vertex(), ctx.Superstep(), v, got, want)
		}
	}
	if ctx.Superstep() < p.steps {
		tag := int64(ctx.Superstep())*1000 + int64(ctx.Vertex())
		ctx.Send((ctx.Vertex()+1)%p.n, ival.Universe, tag)
		ctx.Send(0, ival.Point(ival.Time(ctx.Superstep())), tag)
	}
}

// TestPoolNoAliasingAcrossSupersteps runs the fan-in workload with many
// workers shipping into the same destinations while the barrier recycles
// slabs. Run under `make race`, it doubles as the pool-aliasing race test.
func TestPoolNoAliasingAcrossSupersteps(t *testing.T) {
	const n, steps = 32, 12
	var mu sync.Mutex
	var failure string
	p := fanProgram{steps: steps, n: n, fail: func(format string, args ...any) {
		mu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		mu.Unlock()
	}}
	e, err := New(n, p, Config{NumWorkers: 4, PayloadCodec: codec.Int64{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if failure != "" {
		t.Fatal(failure)
	}
}

// TestPoolGaugesPublished runs a real multi-superstep engine and checks the
// observability wiring: the registry gauges show the message arena being hit
// and bytes being reused.
func TestPoolGaugesPublished(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(4, chainProgram{steps: 6, n: 4}, Config{
		NumWorkers:   2,
		PayloadCodec: codec.Int64{},
		Registry:     reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hits := reg.Gauge(obs.GPoolHits).Load(); hits <= 0 {
		t.Errorf("%s = %d after a 6-superstep run, want > 0", obs.GPoolHits, hits)
	}
	if reused := reg.Gauge(obs.GBytesReused).Load(); reused <= 0 {
		t.Errorf("%s = %d after a 6-superstep run, want > 0", obs.GBytesReused, reused)
	}
	if misses := reg.Gauge(obs.GPoolMisses).Load(); misses <= 0 {
		t.Errorf("%s = %d, want > 0 (first delivery of each slot must miss)", obs.GPoolMisses, misses)
	}
}
