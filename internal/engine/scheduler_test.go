package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

// hashProgram is deliberately order-sensitive: each superstep a vertex folds
// its inbox into a running hash with a non-commutative mix and forwards the
// hash to its neighbors. Any scheduler change that reorders message emission
// or delivery — across chunks, steals, or partitions — diverges the final
// hashes, so equality below means the message streams are identical, not
// merely equivalent.
type hashProgram struct {
	adj  [][]int
	mu   sync.Mutex
	hash []uint64
}

func (p *hashProgram) Init(ctx *Context) {
	v := ctx.Vertex()
	p.mu.Lock()
	p.hash[v] = uint64(v)*0x9e3779b97f4a7c15 + 1
	p.mu.Unlock()
}

func (p *hashProgram) Run(ctx *Context, msgs []Message) {
	ctx.AddComputeCalls(1)
	v := ctx.Vertex()
	p.mu.Lock()
	h := p.hash[v]
	for _, m := range msgs {
		h = h*1099511628211 + uint64(m.Value.(int64))
	}
	p.hash[v] = h
	p.mu.Unlock()
	for _, n := range p.adj[v] {
		ctx.Send(n, ival.Universe, int64(h>>1))
	}
}

// skewedAdj builds a seeded power-law-ish adjacency: a few hub vertices own
// most of the out-edges, the shape that makes static per-worker load uneven.
func skewedAdj(n, baseDeg int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int, n)
	for v := range adj {
		deg := baseDeg
		if v < n/16+1 {
			deg = baseDeg * 12 // hubs
		}
		for i := 0; i < deg; i++ {
			adj[v] = append(adj[v], rng.Intn(n))
		}
	}
	return adj
}

func runHash(t *testing.T, n, supersteps int, cfg Config) ([]uint64, *Metrics) {
	t.Helper()
	p := &hashProgram{adj: skewedAdj(n, 3, 42), hash: make([]uint64, n)}
	cfg.MaxSupersteps = supersteps
	e, err := New(n, p, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.hash, m
}

// TestStealDeterminismMatrix is the engine half of the determinism
// acceptance: with stealing {on, off} × chunk {1, 3, 64} × several worker
// counts, an order-sensitive program must produce hashes identical to the
// static schedule, and the run's message/byte/call totals must match
// exactly.
func TestStealDeterminismMatrix(t *testing.T) {
	const n, steps = 96, 6
	for _, workers := range []int{1, 2, 4, 7} {
		base, bm := runHash(t, n, steps, Config{NumWorkers: workers})
		for _, chunk := range []int{1, 3, 64} {
			got, gm := runHash(t, n, steps, Config{NumWorkers: workers, Steal: true, StealChunk: chunk})
			for v := range base {
				if got[v] != base[v] {
					t.Fatalf("workers=%d chunk=%d: hash[%d] = %#x, want %#x (static)",
						workers, chunk, v, got[v], base[v])
				}
			}
			if gm.Messages != bm.Messages || gm.MessageBytes != bm.MessageBytes ||
				gm.ComputeCalls != bm.ComputeCalls || gm.Supersteps != bm.Supersteps {
				t.Fatalf("workers=%d chunk=%d: metrics diverged: got {msgs %d bytes %d calls %d steps %d}, want {%d %d %d %d}",
					workers, chunk, gm.Messages, gm.MessageBytes, gm.ComputeCalls, gm.Supersteps,
					bm.Messages, bm.MessageBytes, bm.ComputeCalls, bm.Supersteps)
			}
		}
	}
}

// TestFrontierTracksFlags pins the frontier/bitmap invariant the scheduler
// rests on: activation appends exactly the false→true transitions, the
// schedule is the sorted frontier, and rebuildFrontier recovers it from the
// flags alone (the checkpoint-restore path).
func TestFrontierTracksFlags(t *testing.T) {
	e, err := New(9, idleProgram{}, Config{NumWorkers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := e.workers[0]
	for _, slot := range []int{7, 2, 5, 2, 7} {
		w.activate(slot)
	}
	if got, want := len(w.frontier), 3; got != want {
		t.Fatalf("frontier len = %d, want %d (dedup through the bitmap)", got, want)
	}
	if e.countActive() != 3 {
		t.Fatalf("countActive = %d, want 3", e.countActive())
	}
	if !e.anyActive() {
		t.Fatal("anyActive = false with a populated frontier")
	}
	w.prepareSched()
	for i, want := range []int32{2, 5, 7} {
		if w.sched[i] != want {
			t.Fatalf("sched[%d] = %d, want %d (sorted ascending)", i, w.sched[i], want)
		}
	}
	w.finishSched()
	if len(w.frontier) != 0 || e.anyActive() {
		t.Fatal("finishSched must reset the frontier")
	}
	// Flags survive the reset (compute clears them per-slot); rebuild must
	// recover the same schedule from them, as checkpoint restore does.
	w.rebuildFrontier()
	for i, want := range []int32{2, 5, 7} {
		if w.frontier[i] != want {
			t.Fatalf("rebuilt frontier[%d] = %d, want %d", i, w.frontier[i], want)
		}
	}
}

// spinProgram burns a little CPU per vertex and stays quiet, so a skewed
// partition gives one worker a visibly long compute phase for thieves to
// relieve.
type spinProgram struct{ sink int64 }

func (p *spinProgram) Init(*Context) {}

func (p *spinProgram) Run(ctx *Context, msgs []Message) {
	var acc int64
	for i := 0; i < 20000; i++ {
		acc += int64(i) ^ acc<<1
	}
	atomic.AddInt64(&p.sink, acc)
}

// TestStealsHappenAndAreCounted forces total skew — every vertex on worker 0
// of two, chunk size 1, slow vertices — and requires the idle worker to have
// stolen at least one chunk, with the registry counter and trace totals
// agreeing.
func TestStealsHappenAndAreCounted(t *testing.T) {
	const n = 64
	reg := obs.NewRegistry()
	rec := &obs.Recorder{}
	e, err := New(n, &spinProgram{}, Config{
		NumWorkers:    2,
		Steal:         true,
		StealChunk:    1,
		MaxSupersteps: 1,
		Partitioner:   func(v, workers int) int { return 0 },
		Registry:      reg,
		Tracer:        rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	steals := reg.Counter(obs.CSteals).Load()
	if steals == 0 {
		t.Fatal("no steals recorded: worker 1 sat idle next to 64 one-slot chunks on worker 0")
	}
	var traced int64
	for _, ev := range rec.Events() {
		if se, ok := ev.(obs.SuperstepEnd); ok {
			traced += se.Steals
		}
	}
	if traced != steals {
		t.Fatalf("superstep_end steals sum = %d, registry counter = %d", traced, steals)
	}
	if g := reg.Gauge(obs.GActiveVertices); g == nil {
		t.Fatal("active_vertices gauge not published")
	}
}

// TestStealChunkValidation: a negative chunk size is a config error.
func TestStealChunkValidation(t *testing.T) {
	_, err := New(4, idleProgram{}, Config{NumWorkers: 2, Steal: true, StealChunk: -1})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

// TestCheckpointRestoresFrontierUnderStealing is the rollback half: a run
// with stealing on, checkpointing every 2 supersteps and one injected panic
// must replay to exactly the fault-free static result — which requires the
// restored frontiers to match the restored active flags bit for bit.
func TestCheckpointRestoresFrontierUnderStealing(t *testing.T) {
	const n = 24
	clean := newFaultProgram(n)
	e, err := New(n, clean, Config{NumWorkers: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("clean Run: %v", err)
	}

	faulty := newFaultProgram(n)
	faulty.panicRunAt = 5
	e2, err := New(n, faulty, Config{
		NumWorkers:      3,
		Steal:           true,
		StealChunk:      2,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := e2.Run()
	if err != nil {
		t.Fatalf("faulty Run: %v", err)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries)
	}
	for v := range clean.dist {
		if faulty.dist[v] != clean.dist[v] {
			t.Fatalf("dist[%d] = %d after recovery, want %d (fault-free static)",
				v, faulty.dist[v], clean.dist[v])
		}
	}
}

// selfSendProgram keeps a steady-state frontier alive: every executed vertex
// re-sends one pre-boxed message to itself, so each superstep reactivates
// exactly the same slots. Used only by the scheduler alloc gate.
type selfSendProgram struct{ val any }

func (selfSendProgram) Init(*Context) {}

func (p selfSendProgram) Run(ctx *Context, msgs []Message) {
	ctx.Send(ctx.Vertex(), ival.From(3), p.val)
}

// steadySchedulerStep builds one synchronous full superstep — frontier
// scheduling (static or chunked+stolen), compute with self-sends, lane
// merge, and local exchange — warmed past every grow-only buffer's working
// size.
func steadySchedulerStep(t testing.TB, cfg Config) func() {
	t.Helper()
	cfg.PayloadCodec = codec.Int64{}
	e, err := New(16, selfSendProgram{val: int64(7)}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, w := range e.workers {
		for slot := range w.local {
			w.activate(slot)
		}
	}
	step := func() {
		if e.stealOn {
			for _, w := range e.workers {
				w.prepareChunks()
			}
			// Synchronous stand-in for the parallel phase: the first worker
			// drains its own deque and then steals everything else, so both
			// the own-claim and the steal path are measured.
			for _, w := range e.workers {
				w.runChunks()
			}
			for _, w := range e.workers {
				w.mergeChunks()
			}
		} else {
			for _, w := range e.workers {
				w.computeStatic()
			}
		}
		for _, w := range e.workers {
			w.exchangeLocal()
		}
	}
	for i := 0; i < 8; i++ {
		step()
	}
	return step
}

// TestSchedulerNoAllocsSteadyState extends the PR 4 allocation discipline to
// the scheduler: a steady-state superstep through the dense frontier — and
// through chunk preparation, stealing and lane merging when enabled — must
// not allocate.
func TestSchedulerNoAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gate skipped under -race: sync.Pool drops items at random under the race detector")
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{name: "static-frontier", cfg: Config{NumWorkers: 2}},
		{name: "steal-chunk1", cfg: Config{NumWorkers: 2, Steal: true, StealChunk: 1}},
		{name: "steal-chunk4", cfg: Config{NumWorkers: 2, Steal: true, StealChunk: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			step := steadySchedulerStep(t, tc.cfg)
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Errorf("steady-state scheduler superstep allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// TestPartitionBalanced pins the greedy bin-packing: deterministic output,
// heaviest vertices spread across workers, and a load spread far tighter
// than modulo hashing achieves on the same weights.
func TestPartitionBalanced(t *testing.T) {
	weights := []int64{1000, 0, 0, 0, 900, 0, 0, 0, 800, 0, 0, 0} // hubs at 0,4,8: modulo(4) piles them onto worker 0
	const workers = 4
	part := PartitionBalanced(weights)
	assign := make([]int, len(weights))
	for v := range weights {
		assign[v] = part(v, workers)
		if assign[v] < 0 || assign[v] >= workers {
			t.Fatalf("assign[%d] = %d out of range", v, assign[v])
		}
	}
	// Deterministic on re-query.
	for v := range weights {
		if part(v, workers) != assign[v] {
			t.Fatalf("assignment not stable for vertex %d", v)
		}
	}
	load := make([]int64, workers)
	for v := range weights {
		load[assign[v]] += weights[v]
	}
	var max, min int64 = 0, 1 << 62
	for _, l := range load {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	// Greedy LPT on {1000,900,800,0...} over 4 workers: one hub per worker,
	// max load 1000, min 0 is fine — but modulo would put all 2700 on one.
	if max != 1000 {
		t.Fatalf("max worker load = %d, want 1000 (one hub per worker)", max)
	}
	// Vertices outside the weight slice fall back to hashing.
	if got := part(len(weights)+3, workers); got != (len(weights)+3)%workers {
		t.Fatalf("out-of-range vertex assigned %d, want modulo fallback", got)
	}
}
