package engine

import (
	"math/rand/v2"
	"time"
)

// This file is the one retry-backoff policy every control-plane and
// data-plane retry in the stack shares: capped exponential growth with
// equal jitter. The jitter matters for recovery storms — when a coordinator
// restarts, every worker re-dials at once, and a deterministic schedule
// keeps them colliding in lockstep on every attempt; randomizing the upper
// half of each delay de-synchronizes the herd while keeping a hard lower
// bound (half the deterministic delay) so backoff still backs off.

// RetryDelay returns the pause before retry attempt (1-based) of an
// operation whose initial backoff is base: the deterministic delay
// d = base·2^(attempt-1), capped at max, jittered uniformly into [d/2, d).
// A non-positive base or attempt yields zero (no wait); a non-positive max
// leaves growth uncapped.
func RetryDelay(base time.Duration, attempt int, max time.Duration) time.Duration {
	return retryDelayAt(base, attempt, max, rand.Float64())
}

// retryDelayAt is RetryDelay with the randomness injected: r must lie in
// [0, 1). Split out so tests can pin the bounds exactly.
func retryDelayAt(base time.Duration, attempt int, max time.Duration, r float64) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		if max > 0 && d >= max {
			d = max
			break
		}
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(r*float64(d-half))
}
