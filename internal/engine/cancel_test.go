package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

// pingProgram never converges: every vertex forwards a counter around a ring
// each superstep, so a run over it only ends by MaxSupersteps, a master halt
// or cancellation.
type pingProgram struct{ n int }

func (p *pingProgram) Init(ctx *Context) {
	ctx.Send((ctx.Vertex()+1)%p.n, ival.Universe, int64(0))
}

func (p *pingProgram) Run(ctx *Context, msgs []Message) {
	for _, m := range msgs {
		ctx.Send((ctx.Vertex()+1)%p.n, ival.Universe, m.Value.(int64)+1)
	}
}

// cancelMaster cancels the run's context once the given superstep is reached;
// the engine must then abort at the barrier rather than via the master.
type cancelMaster struct {
	at     int
	cancel context.CancelFunc
}

func (m *cancelMaster) BeforeSuperstep(mc *MasterControl) {
	if mc.Superstep() >= m.at {
		m.cancel()
	}
}

func TestRunCanceledAtBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 16
	reg := obs.NewRegistry()
	e, err := New(n, &pingProgram{n: n}, Config{
		NumWorkers: 4,
		Context:    ctx,
		Master:     &cancelMaster{at: 3, cancel: cancel},
		Registry:   reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := e.Run()
	if m != nil {
		t.Fatalf("Run returned metrics despite cancellation")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run error = %v, want ErrCanceled", err)
	}
	var vp *VertexPanicError
	if errors.As(err, &vp) {
		t.Fatalf("cancellation surfaced as a vertex panic: %v", err)
	}
	// Cancellation fired at the superstep-3 barrier, so the run stopped well
	// short of where an uncanceled ping ring would still be going.
	if got := reg.Counter(obs.CSupersteps).Load(); got < 2 || got > 4 {
		t.Errorf("supersteps before abort = %d, want 2..4", got)
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 8
	e, err := New(n, &pingProgram{n: n}, Config{NumWorkers: 2, Context: ctx})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run error = %v, want ErrCanceled", err)
	}
}

// TestCancelSkipsRecovery proves cancellation is an external abort, not a
// recoverable fault: a checkpointed run must not roll back and replay a
// canceled superstep.
func TestCancelSkipsRecovery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 16
	reg := obs.NewRegistry()
	p := &snapPingProgram{pingProgram{n: n}}
	e, err := New(n, p, Config{
		NumWorkers:      4,
		Context:         ctx,
		Master:          &cancelMaster{at: 4, cancel: cancel},
		CheckpointEvery: 1,
		Registry:        reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run error = %v, want ErrCanceled", err)
	}
	if got := reg.Counter(obs.CRecoveries).Load(); got != 0 {
		t.Errorf("recoveries = %d after cancellation, want 0", got)
	}
}

// snapPingProgram adds the stateless Snapshotter contract checkpointing
// requires.
type snapPingProgram struct{ pingProgram }

func (p *snapPingProgram) Snapshot() any { return nil }
func (p *snapPingProgram) Restore(s any) {}

// TestCancelNoGoroutineLeak aborts a run mid-flight and asserts the process
// settles back to its pre-run goroutine count: every worker joined its
// barrier and nothing is left polling the dead context.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		n := 64
		e, err := New(n, &pingProgram{n: n}, Config{NumWorkers: 8, Context: ctx})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := e.Run()
			done <- err
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("Run error = %v, want ErrCanceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("Run did not return after cancel")
		}
	}
	// Give exited workers a moment to be reaped before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines: before=%d after=%d — canceled runs leaked", before, after)
	}
}
