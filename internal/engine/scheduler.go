package engine

import (
	"runtime"
	"slices"
	"sort"
	"time"
)

// This file is the compute-phase scheduler: dense active frontiers (always
// on) and chunked work stealing (opt-in via Config.Steal).
//
// Frontier lifecycle. `active []bool` stays the dedup bitmap, but every
// false→true transition also appends the slot to the worker's grow-only
// `frontier` list, so the compute phase iterates exactly the activated slots
// instead of scanning all of them. The frontier is built in delivery order,
// sorted ascending at the start of compute (so message emission order matches
// the historical slot-ascending scan bit for bit), consumed, and reset at the
// end of the phase; checkpoint restore rebuilds it from the restored flags.
//
// Steal protocol. With Config.Steal, each worker's sorted frontier is split
// into fixed-size chunks behind a per-worker atomic claim cursor. A worker
// drains its own chunks first, then repeatedly claims a chunk from the peer
// with the most unclaimed chunks left. Every chunk is claimed exactly once;
// stolen chunks execute against the owner's vertex state (inbox slabs, active
// flags) — safe because chunks cover disjoint slots — while metric partials
// and ICM scratch workspaces belong to the executing worker. Sends from a
// chunk land in the chunk's private per-destination lanes; after the phase
// barrier each owner concatenates its chunks' lanes into its real outboxes in
// chunk (= slot-ascending) order, so the bytes put on the wire are identical
// whether stealing is on, off, or racy in timing.

// DefaultStealChunk is the frontier-slots-per-chunk granularity when
// Config.Steal is set and Config.StealChunk is zero. Chunks are the steal
// unit: smaller chunks balance better but cost more claim traffic and lane
// merges.
const DefaultStealChunk = 64

// stealYieldStride is how many chunks a thief steals between cooperative
// yields when workers outnumber Ps (see runChunks).
const stealYieldStride = 16

// chunk is one stealable slice of a worker's scheduled slot list, with
// private per-destination outbox lanes so concurrent executors never share
// an append target. Both the chunk structs and their lanes are grow-only.
type chunk struct {
	lo, hi int32       // bounds into the owner's sched list
	lanes  [][]Message // per destination worker; merged at the barrier
}

// activate marks a local slot active and, on the false→true transition,
// appends it to the dense frontier. Callers run on the owning worker's
// goroutine (delivery or Init), never concurrently for one worker.
func (w *worker) activate(slot int) {
	if !w.active[slot] {
		w.active[slot] = true
		w.frontier = append(w.frontier, int32(slot))
	}
}

// prepareSched fixes the slot list the imminent compute phase iterates: the
// frontier, sorted ascending so execution order matches the historical
// full-array scan, or a lazily built all-slots list under ActivateAll.
func (w *worker) prepareSched() {
	if w.eng.cfg.ActivateAll {
		if w.allSlots == nil {
			w.allSlots = make([]int32, len(w.local))
			for i := range w.allSlots {
				w.allSlots[i] = int32(i)
			}
		}
		w.sched = w.allSlots
		return
	}
	slices.Sort(w.frontier)
	w.sched = w.frontier
}

// finishSched ends a compute phase: the consumed frontier resets (delivery
// during the next exchange rebuilds it) and the schedule is dropped.
func (w *worker) finishSched() {
	w.frontier = w.frontier[:0]
	w.sched = nil
}

// rebuildFrontier derives the frontier from the active flags; checkpoint
// restore uses it, and the result is sorted by construction.
func (w *worker) rebuildFrontier() {
	w.frontier = w.frontier[:0]
	for slot, a := range w.active {
		if a {
			w.frontier = append(w.frontier, int32(slot))
		}
	}
}

// runSlots executes the program over the given slots of owner's vertex set,
// recycling consumed inbox slabs and clearing active flags exactly like the
// historical static loop. ctx belongs to the executing worker; owner may be
// a different worker when the slots come from a stolen chunk.
func (e *Engine) runSlots(ctx *Context, owner *worker, slots []int32) {
	for _, s := range slots {
		if e.aborted() {
			return
		}
		slot := int(s)
		v := owner.local[slot]
		ctx.vertex = v
		ctx.slot = slot
		var msgs []Message
		if sl := owner.inbox[slot]; sl != nil {
			msgs = sl.msgs
		}
		if !e.guardedCall(int(v), func() { e.program.Run(ctx, msgs) }) {
			// A panicking vertex keeps its slab: rollback recycles every
			// live inbox slab before replaying.
			return
		}
		if sl := owner.inbox[slot]; sl != nil {
			owner.inbox[slot] = nil
			msgArena.put(sl)
		}
		owner.active[slot] = false
	}
}

// computeStatic is the stealing-off compute phase: one worker, its own
// frontier, sends going straight to its outboxes.
func (w *worker) computeStatic() {
	e := w.eng
	phaseStart := time.Now()
	defer func() {
		w.computeNS = time.Since(phaseStart).Nanoseconds()
		w.stealNS = 0
	}()
	w.prepareSched()
	w.cctx = Context{eng: e, w: w}
	e.runSlots(&w.cctx, w, w.sched)
	w.finishSched()
}

// prepareChunks cuts the worker's schedule into stealable chunks and resets
// the claim cursor. Chunk structs and lanes grow once and are reused, so a
// steady-state superstep allocates nothing here. Every lane is reset first:
// an aborted superstep can leave unmerged lanes behind.
func (w *worker) prepareChunks() {
	e := w.eng
	for i := range w.chunks {
		for d := range w.chunks[i].lanes {
			w.chunks[i].lanes[d] = w.chunks[i].lanes[d][:0]
		}
	}
	w.prepareSched()
	size := e.chunkSize
	n := (len(w.sched) + size - 1) / size
	for len(w.chunks) < n {
		w.chunks = append(w.chunks, chunk{lanes: make([][]Message, len(e.workers))})
	}
	for i := 0; i < n; i++ {
		lo := i * size
		hi := lo + size
		if hi > len(w.sched) {
			hi = len(w.sched)
		}
		w.chunks[i].lo, w.chunks[i].hi = int32(lo), int32(hi)
	}
	w.nchunks = n
	w.cursor.Store(0)
}

// runChunks is one worker's share of a stealing compute phase: drain the own
// deque, then steal chunks from the most-loaded peer until no unclaimed work
// remains anywhere. computeNS gets the time spent executing chunks (own and
// stolen); the remainder of the phase wall time is idle-wait, reported as
// stealNS.
func (w *worker) runChunks() {
	e := w.eng
	phaseStart := time.Now()
	// When workers outnumber Ps, one thief that went idle first could hog
	// its P and drain a victim's whole deque before the other idle workers
	// are ever scheduled; yielding every stealYieldStride stolen chunks
	// keeps the steal phase interleaved among thieves without paying a
	// scheduler round-trip per chunk. Workers draining their own deque
	// never yield — round-robining owners at chunk granularity would
	// equalize progress in chunks per pass and leave nothing to steal.
	// With a P per worker the yield is skipped entirely; peers claim
	// concurrently.
	yield := runtime.GOMAXPROCS(0) < len(e.workers)
	stolen := 0
	var execNS int64
	w.cctx = Context{eng: e, w: w}
	for {
		i := int(w.cursor.Add(1)) - 1
		if i >= w.nchunks {
			break
		}
		execNS += e.runChunk(&w.cctx, w, &w.chunks[i])
		if e.aborted() {
			break
		}
	}
	for !e.aborted() {
		v := e.mostLoaded()
		if v == nil {
			break
		}
		i := int(v.cursor.Add(1)) - 1
		if i >= v.nchunks {
			continue // lost the race for the victim's last chunk; re-pick
		}
		execNS += e.runChunk(&w.cctx, v, &v.chunks[i])
		w.steals++
		stolen++
		if yield && stolen%stealYieldStride == 0 {
			runtime.Gosched()
		}
	}
	w.computeNS = execNS
	w.stealNS = 0
	if ns := time.Since(phaseStart).Nanoseconds() - execNS; ns > 0 {
		w.stealNS = ns
	}
}

// runChunk executes one claimed chunk against its owner's state, routing
// sends into the chunk's private lanes, and returns the elapsed time.
func (e *Engine) runChunk(ctx *Context, owner *worker, ch *chunk) int64 {
	start := time.Now()
	ctx.lanes = ch.lanes
	e.runSlots(ctx, owner, owner.sched[ch.lo:ch.hi])
	ctx.lanes = nil
	return time.Since(start).Nanoseconds()
}

// mostLoaded picks the worker with the most unclaimed chunks, or nil when
// every chunk everywhere has been claimed. Reads race benignly with claim
// cursors: a stale count only sends the thief to a drier victim, and the
// claim itself is the atomic arbiter.
func (e *Engine) mostLoaded() *worker {
	var best *worker
	bestLeft := 0
	for _, v := range e.workers {
		if left := v.nchunks - int(v.cursor.Load()); left > bestLeft {
			bestLeft = left
			best = v
		}
	}
	return best
}

// mergeChunks concatenates this worker's chunk lanes into its real outboxes
// in chunk order. Chunks partition the sorted schedule, so the concatenation
// reproduces the exact slot-ascending emission order of the static loop —
// results are byte-identical regardless of which worker executed each chunk.
func (w *worker) mergeChunks() {
	for i := 0; i < w.nchunks; i++ {
		ch := &w.chunks[i]
		for d, lane := range ch.lanes {
			if len(lane) > 0 {
				w.outbox[d] = append(w.outbox[d], lane...)
				ch.lanes[d] = lane[:0]
			}
		}
	}
	w.finishSched()
}

// imbalanceMilli reports the latest compute phase's max/mean worker compute
// time in thousandths: 1000 is a perfectly balanced superstep, W·1000 is one
// straggler doing everything. Under stealing computeNS counts executed work
// only, so the gauge shows the balance stealing actually achieved.
func (e *Engine) imbalanceMilli() int64 {
	var sum, max int64
	for _, w := range e.workers {
		ns := w.computeNS
		sum += ns
		if ns > max {
			max = ns
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := sum / int64(len(e.workers))
	if mean == 0 {
		return 0
	}
	return max * 1000 / mean
}

// PartitionBalanced returns a Partitioner that greedily bin-packs vertices
// onto workers by the given per-vertex work weights (largest weight first,
// onto the least-loaded worker), instead of the default index-modulo hash.
// It is the static answer to compute skew — hub vertices spread across
// workers up front — and the baseline the skew bench compares work stealing
// against. Weights are typically Σ(out-degree · lifespan length), e.g. from
// tgraph.Graph.WorkWeights. The assignment is deterministic; vertices
// outside the weight slice fall back to modulo hashing. The returned closure
// caches its assignment and is not safe for concurrent use (the engine calls
// it sequentially from New).
func PartitionBalanced(weights []int64) func(vertex, numWorkers int) int {
	var (
		cachedN int
		assign  []int32
	)
	return func(v, n int) int {
		if v < 0 || v >= len(weights) || n <= 0 {
			if n <= 0 {
				return 0
			}
			return v % n
		}
		if assign == nil || cachedN != n {
			assign = balancedAssign(weights, n)
			cachedN = n
		}
		return int(assign[v])
	}
}

// balancedAssign is the greedy longest-processing-time bin packing behind
// PartitionBalanced: stable-sort vertices by descending weight, place each on
// the least-loaded worker (ties: fewest vertices, then lowest id). The +1 per
// placement keeps zero-weight vertices spread instead of piling onto one bin.
func balancedAssign(weights []int64, n int) []int32 {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]int64, n)
	count := make([]int, n)
	assign := make([]int32, len(weights))
	for _, v := range order {
		best := 0
		for w := 1; w < n; w++ {
			if load[w] < load[best] || (load[w] == load[best] && count[w] < count[best]) {
				best = w
			}
		}
		assign[v] = int32(best)
		load[best] += weights[v] + 1
		count[best]++
	}
	return assign
}
