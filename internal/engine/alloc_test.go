package engine

import (
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

type idleProgram struct{}

func (idleProgram) Init(*Context) {}

func (idleProgram) Run(*Context, []Message) {}

// sendContext builds an engine with tracing disabled (or a tracer attached)
// and hands back a live Context on worker 0 with a pre-grown outbox, so the
// Send path itself is what gets measured.
func sendContext(t testing.TB, tracer obs.Tracer) *Context {
	t.Helper()
	e, err := New(4, idleProgram{}, Config{
		NumWorkers:   2,
		PayloadCodec: codec.Int64{},
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := &Context{eng: e, w: e.workers[0], vertex: 0}
	// Warm the outbox and the codec scratch buffer past any growth.
	for i := 0; i < 64; i++ {
		ctx.Send(1, ival.Universe, int64(5))
	}
	for dw := range ctx.w.outbox {
		ctx.w.outbox[dw] = ctx.w.outbox[dw][:0]
	}
	return ctx
}

// TestSendNoAllocsUntraced is the acceptance check that observability is
// free when off: with no tracer configured, Context.Send — which still
// counts messages, bytes and interval-encoding classes — must not allocate.
func TestSendNoAllocsUntraced(t *testing.T) {
	ctx := sendContext(t, nil)
	var v any = int64(5) // box once; Send takes any
	intervals := []ival.Interval{
		ival.Universe,  // unbounded class
		ival.Point(3),  // unit class
		ival.New(2, 9), // general class
		ival.New(5, 5), // empty class
	}
	for _, iv := range intervals {
		iv := iv
		allocs := testing.AllocsPerRun(200, func() {
			ctx.Send(1, iv, v)
			ctx.w.outbox[1] = ctx.w.outbox[1][:0]
		})
		if allocs != 0 {
			t.Errorf("Send(%v) with tracing off allocates %.1f per call, want 0", iv, allocs)
		}
	}
}

// BenchmarkContextSend reports the Send hot path with tracing off — the
// configuration every production run uses.
func BenchmarkContextSend(b *testing.B) {
	ctx := sendContext(b, nil)
	var v any = int64(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Send(1, ival.Universe, v)
		if len(ctx.w.outbox[1]) >= 1024 {
			ctx.w.outbox[1] = ctx.w.outbox[1][:0]
		}
	}
}
