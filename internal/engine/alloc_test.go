package engine

import (
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

type idleProgram struct{}

func (idleProgram) Init(*Context) {}

func (idleProgram) Run(*Context, []Message) {}

// sendContext builds an engine with tracing disabled (or a tracer attached)
// and hands back a live Context on worker 0 with a pre-grown outbox, so the
// Send path itself is what gets measured.
func sendContext(t testing.TB, tracer obs.Tracer) *Context {
	t.Helper()
	e, err := New(4, idleProgram{}, Config{
		NumWorkers:   2,
		PayloadCodec: codec.Int64{},
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := &Context{eng: e, w: e.workers[0], vertex: 0}
	// Warm the outbox and the codec scratch buffer past any growth.
	for i := 0; i < 64; i++ {
		ctx.Send(1, ival.Universe, int64(5))
	}
	for dw := range ctx.w.outbox {
		ctx.w.outbox[dw] = ctx.w.outbox[dw][:0]
	}
	return ctx
}

// TestSendNoAllocsUntraced is the acceptance check that observability is
// free when off: with no tracer configured, Context.Send — which still
// counts messages, bytes and interval-encoding classes — must not allocate.
func TestSendNoAllocsUntraced(t *testing.T) {
	ctx := sendContext(t, nil)
	var v any = int64(5) // box once; Send takes any
	intervals := []ival.Interval{
		ival.Universe,  // unbounded class
		ival.Point(3),  // unit class
		ival.New(2, 9), // general class
		ival.New(5, 5), // empty class
	}
	for _, iv := range intervals {
		iv := iv
		allocs := testing.AllocsPerRun(200, func() {
			ctx.Send(1, iv, v)
			ctx.w.outbox[1] = ctx.w.outbox[1][:0]
		})
		if allocs != 0 {
			t.Errorf("Send(%v) with tracing off allocates %.1f per call, want 0", iv, allocs)
		}
	}
}

// minInt64Combiner mirrors SSSP's receiver-side combiner: it returns one of
// its (already boxed) inputs, so combining itself cannot allocate.
func minInt64Combiner(a, b any) any {
	if a.(int64) < b.(int64) {
		return a
	}
	return b
}

// steadyExchangeStep builds an engine, installs a fixed traffic template, and
// returns one steady-state exchange superstep: refill every outbox from the
// template, run every worker's in-memory exchange, then recycle the delivered
// inbox slabs exactly as the compute phase would. The step is pre-run until
// all grow-only buffers and the message arena have reached their working
// size, so what remains is the pure data path.
func steadyExchangeStep(t testing.TB, cfg Config, traffic [][][]Message) func() {
	t.Helper()
	numV := 0
	for _, perDst := range traffic {
		for _, batch := range perDst {
			for _, m := range batch {
				if int(m.Dst) >= numV {
					numV = int(m.Dst) + 1
				}
			}
		}
	}
	e, err := New(numV, idleProgram{}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	step := func() {
		for _, w := range e.workers {
			for dst := range e.workers {
				w.outbox[dst] = append(w.outbox[dst][:0], traffic[w.id][dst]...)
			}
		}
		for _, w := range e.workers {
			w.exchangeLocal()
		}
		for _, w := range e.workers {
			for s, sl := range w.inbox {
				if sl != nil {
					w.inbox[s] = nil
					msgArena.put(sl)
				}
			}
		}
	}
	for i := 0; i < 8; i++ {
		step()
	}
	return step
}

// ssspTraffic is SSSP-on-transit-shaped exchange load: unbounded [t, ∞)
// message intervals, int64 costs, several messages per destination so the
// receiver-side combiner path runs. Payloads are boxed once here, never
// inside the measured step.
func ssspTraffic(workers, vertices int) [][][]Message {
	tr := make([][][]Message, workers)
	for src := range tr {
		tr[src] = make([][]Message, workers)
		for v := 0; v < vertices; v++ {
			dst := v % workers
			for k := 0; k < 3; k++ {
				tr[src][dst] = append(tr[src][dst], Message{
					Dst:   int32(v),
					When:  ival.From(ival.Time(5 + k)),
					Value: int64(300 + v + k),
				})
			}
		}
	}
	return tr
}

// prTraffic is PageRank-on-transit-shaped exchange load: general (bounded)
// message intervals, float64 rank mass, no combiner — every message is
// appended to its destination slab.
func prTraffic(workers, vertices int) [][][]Message {
	tr := make([][][]Message, workers)
	for src := range tr {
		tr[src] = make([][]Message, workers)
		for v := 0; v < vertices; v++ {
			dst := v % workers
			for k := 0; k < 3; k++ {
				tr[src][dst] = append(tr[src][dst], Message{
					Dst:   int32(v),
					When:  ival.New(ival.Time(2+k), ival.Time(9+k)),
					Value: float64(v+1) * 0.137,
				})
			}
		}
	}
	return tr
}

// TestExchangeNoAllocsSteadyState is the exchange-phase half of the
// zero-allocation gate: with the message arena warm, a full in-memory
// exchange superstep — outbox refill, delivery into pooled inbox slabs
// (combined and uncombined), and slab recycling — must not allocate, for both
// SSSP-shaped and PageRank-shaped traffic.
func TestExchangeNoAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gate skipped under -race: sync.Pool drops items at random under the race detector")
	}
	cases := []struct {
		name    string
		cfg     Config
		traffic [][][]Message
	}{
		{
			name: "sssp-shaped",
			cfg: Config{
				NumWorkers:   2,
				PayloadCodec: codec.Int64{},
				Combiner:     CombinerFunc(minInt64Combiner),
			},
			traffic: ssspTraffic(2, 8),
		},
		{
			name: "pr-shaped",
			cfg: Config{
				NumWorkers:   2,
				PayloadCodec: codec.Float64{},
			},
			traffic: prTraffic(2, 8),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			step := steadyExchangeStep(t, tc.cfg, tc.traffic)
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Errorf("steady-state exchange superstep allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// BenchmarkExchangeSteadyState reports the full in-memory exchange superstep
// under SSSP-shaped traffic.
func BenchmarkExchangeSteadyState(b *testing.B) {
	step := steadyExchangeStep(b, Config{
		NumWorkers:   2,
		PayloadCodec: codec.Int64{},
		Combiner:     CombinerFunc(minInt64Combiner),
	}, ssspTraffic(2, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkContextSend reports the Send hot path with tracing off — the
// configuration every production run uses.
func BenchmarkContextSend(b *testing.B) {
	ctx := sendContext(b, nil)
	var v any = int64(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Send(1, ival.Universe, v)
		if len(ctx.w.outbox[1]) >= 1024 {
			ctx.w.outbox[1] = ctx.w.outbox[1][:0]
		}
	}
}
