package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
)

// faultProgram propagates BFS levels around a directed ring and injects one
// fault on demand: a panic in Init, a panic in Run, or nothing.
type faultProgram struct {
	n           int
	mu          sync.Mutex
	dist        []int64
	panicInit   int // vertex to panic in Init, -1 for never
	panicRunAt  int // superstep to panic in Run, 0 for never
	panicEvery  bool
	panicsFired int
}

func newFaultProgram(n int) *faultProgram {
	return &faultProgram{n: n, dist: make([]int64, n), panicInit: -1}
}

func (p *faultProgram) Init(ctx *Context) {
	if ctx.Vertex() == p.panicInit {
		panic("injected init panic")
	}
	p.mu.Lock()
	p.dist[ctx.Vertex()] = 1 << 30
	p.mu.Unlock()
}

func (p *faultProgram) Run(ctx *Context, msgs []Message) {
	if p.panicRunAt != 0 && ctx.Superstep() == p.panicRunAt {
		p.mu.Lock()
		fire := p.panicEvery || p.panicsFired == 0
		if fire {
			p.panicsFired++
		}
		p.mu.Unlock()
		if fire {
			panic(fmt.Sprintf("injected run panic at superstep %d", ctx.Superstep()))
		}
	}
	v := ctx.Vertex()
	best := int64(1 << 30)
	if ctx.Superstep() == 1 && v == 0 {
		best = 0
	}
	for _, m := range msgs {
		if d := m.Value.(int64); d < best {
			best = d
		}
	}
	p.mu.Lock()
	cur := p.dist[v]
	if best < cur {
		p.dist[v] = best
	}
	p.mu.Unlock()
	if best < cur {
		ctx.Send((v+1)%p.n, ival.Universe, best+1)
	}
}

func (p *faultProgram) Snapshot() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int64(nil), p.dist...)
}

func (p *faultProgram) Restore(snapshot any) {
	p.mu.Lock()
	copy(p.dist, snapshot.([]int64))
	p.mu.Unlock()
}

// badCodec decodes nothing, failing every round-trip.
type badCodec struct{}

func (badCodec) Append(buf []byte, v any) []byte { return append(buf, 0) }
func (badCodec) Decode(buf []byte) (any, int, error) {
	return nil, 0, errors.New("badCodec: always fails")
}

// errTransport fails every send.
type errTransport struct{}

func (errTransport) Send(src, dst int, batch []byte) error {
	return errors.New("errTransport: send failed")
}
func (errTransport) Recv(dst int) ([][]byte, error) { return nil, nil }
func (errTransport) Close() error                   { return nil }

// TestRunSurvivesFaults is the satellite table: every user-level fault —
// panic in Init, panic in Run, a codec round-trip failure, and a mid-run
// transport error — must surface as an error from Run with the process
// alive, never as a crash.
func TestRunSurvivesFaults(t *testing.T) {
	const n = 8
	cases := []struct {
		name      string
		configure func(p *faultProgram) Config
		wantPanic bool // error must be a *VertexPanicError
	}{
		{
			name: "panic in Init",
			configure: func(p *faultProgram) Config {
				p.panicInit = 3
				return Config{NumWorkers: 2}
			},
			wantPanic: true,
		},
		{
			name: "panic in Run",
			configure: func(p *faultProgram) Config {
				p.panicRunAt = 2
				return Config{NumWorkers: 2}
			},
			wantPanic: true,
		},
		{
			name: "codec round-trip failure",
			configure: func(p *faultProgram) Config {
				return Config{NumWorkers: 2, PayloadCodec: badCodec{}, VerifyCodec: true}
			},
		},
		{
			name: "mid-run transport error",
			configure: func(p *faultProgram) Config {
				// SendRetries -1 disables retries so the stub's permanent
				// failure surfaces immediately.
				return Config{NumWorkers: 2, PayloadCodec: codec.Int64{},
					Transport: errTransport{}, SendRetries: -1}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newFaultProgram(n)
			cfg := tc.configure(p)
			e, err := New(n, p, cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			m, err := e.Run()
			if err == nil {
				t.Fatalf("Run must fail, got metrics %v", m)
			}
			var vp *VertexPanicError
			if got := errors.As(err, &vp); got != tc.wantPanic {
				t.Fatalf("VertexPanicError presence = %v, want %v (err: %v)", got, tc.wantPanic, err)
			}
			if tc.wantPanic {
				if vp.Vertex < 0 || vp.Superstep < 1 || len(vp.Stack) == 0 {
					t.Errorf("panic detail incomplete: vertex %d superstep %d stack %d bytes",
						vp.Vertex, vp.Superstep, len(vp.Stack))
				}
			}
		})
	}
}

// TestCheckpointRecoversFromPanic: with CheckpointEvery set, a one-shot
// panic rolls back and replays to the exact fault-free answer and metrics.
func TestCheckpointRecoversFromPanic(t *testing.T) {
	const n = 10
	clean := newFaultProgram(n)
	e, err := New(n, clean, Config{NumWorkers: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, err := e.Run()
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	for _, every := range []int{1, 2, 4} {
		p := newFaultProgram(n)
		p.panicRunAt = 4
		e, err := New(n, p, Config{NumWorkers: 3, CheckpointEvery: every})
		if err != nil {
			t.Fatalf("New(every=%d): %v", every, err)
		}
		got, err := e.Run()
		if err != nil {
			t.Fatalf("run with CheckpointEvery=%d: %v", every, err)
		}
		for i := 0; i < n; i++ {
			if p.dist[i] != int64(i) {
				t.Fatalf("every=%d: dist[%d] = %d, want %d", every, i, p.dist[i], i)
			}
		}
		if p.panicsFired != 1 {
			t.Errorf("every=%d: panics fired = %d, want 1", every, p.panicsFired)
		}
		if got.Recoveries != 1 {
			t.Errorf("every=%d: recoveries = %d, want 1", every, got.Recoveries)
		}
		if got.Supersteps != want.Supersteps || got.Messages != want.Messages ||
			got.MessageBytes != want.MessageBytes {
			t.Errorf("every=%d: metrics diverged:\nclean: %v\nrecovered: %v", every, want, got)
		}
	}
}

// TestRecoveryExhausted: a deterministic fault that outlives the recovery
// budget must surface ErrRecoveryExhausted with the original cause wrapped.
func TestRecoveryExhausted(t *testing.T) {
	const n = 6
	p := newFaultProgram(n)
	p.panicRunAt = 3
	p.panicEvery = true // refires on every replay
	e, err := New(n, p, Config{NumWorkers: 2, CheckpointEvery: 1, MaxRecoveries: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = e.Run()
	if !errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("want ErrRecoveryExhausted, got %v", err)
	}
	var vp *VertexPanicError
	if !errors.As(err, &vp) {
		t.Fatalf("exhausted error must wrap the underlying panic, got %v", err)
	}
	if p.panicsFired != 3 {
		t.Errorf("panics fired = %d, want 3 (initial + 2 replays)", p.panicsFired)
	}
}

// TestCheckpointRequiresSnapshotter: checkpointing without the Snapshotter
// contract is a configuration error, caught up front.
func TestCheckpointRequiresSnapshotter(t *testing.T) {
	p := &countProgram{limit: 2}
	if _, err := New(4, p, Config{NumWorkers: 2, CheckpointEvery: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

// TestCheckpointWithAggregatorsAndMaster: rollback must restore merged
// aggregates and phase, and masters see identical values on replay.
type replayMaster struct {
	mu    sync.Mutex
	seen  map[int][]int64 // superstep -> aggregate values observed
	halt  int
	count int
}

func (m *replayMaster) BeforeSuperstep(mc *MasterControl) {
	m.mu.Lock()
	var v int64
	if x, ok := mc.AggValue("sum").(int64); ok {
		v = x
	}
	m.seen[mc.Superstep()] = append(m.seen[mc.Superstep()], v)
	m.count++
	m.mu.Unlock()
	mc.SetPhase(mc.Superstep())
	if m.halt > 0 && mc.Superstep() >= m.halt {
		mc.Halt()
	}
}

// aggFaultProgram aggregates 1 per vertex per superstep and panics once.
type aggFaultProgram struct {
	faultProgram
}

func (p *aggFaultProgram) Run(ctx *Context, msgs []Message) {
	ctx.Aggregate("sum", int64(1))
	p.faultProgram.Run(ctx, msgs)
}

func TestCheckpointWithAggregatorsAndMaster(t *testing.T) {
	const n = 6
	p := &aggFaultProgram{faultProgram: *newFaultProgram(n)}
	p.panicRunAt = 3
	master := &replayMaster{seen: map[int][]int64{}}
	e, err := New(n, p, Config{NumWorkers: 2, CheckpointEvery: 1, Master: master})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.RegisterAggregator("sum", SumInt64())
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries)
	}
	// Superstep 3 ran twice (original + replay); the master must have seen
	// the identical aggregate value both times.
	vals := master.seen[3]
	if len(vals) != 2 || vals[0] != vals[1] {
		t.Errorf("replayed master observations at superstep 3 = %v, want two identical", vals)
	}
	for i := 0; i < n; i++ {
		if p.dist[i] != int64(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, p.dist[i], i)
		}
	}
}

// classByteProgram rings tokens for a fixed number of supersteps, shipping
// one message of each interval-encoding class per hop, with an optional
// one-shot injected panic. It carries no user state, so Snapshot/Restore are
// trivial.
type classByteProgram struct {
	n, steps    int
	panicRunAt  int
	mu          sync.Mutex
	panicsFired int
}

func (p *classByteProgram) Init(*Context) {}

func (p *classByteProgram) Run(ctx *Context, msgs []Message) {
	if p.panicRunAt != 0 && ctx.Superstep() == p.panicRunAt {
		p.mu.Lock()
		fire := p.panicsFired == 0
		if fire {
			p.panicsFired++
		}
		p.mu.Unlock()
		if fire {
			panic("injected class-byte panic")
		}
	}
	if ctx.Superstep() >= p.steps {
		return
	}
	s := ival.Time(ctx.Superstep())
	dst := (ctx.Vertex() + 1) % p.n
	ctx.Send(dst, ival.Universe, int64(1))    // unbounded class
	ctx.Send(dst, ival.Point(s), int64(2))    // unit class
	ctx.Send(dst, ival.New(1, s+5), int64(3)) // general class
}

func (p *classByteProgram) Snapshot() any { return nil }
func (p *classByteProgram) Restore(any)   {}

// TestCheckpointRewindDoesNotDoubleCountClassBytes pins the rewind accounting
// at the registry level: with CheckpointEvery=1, a panicked superstep is
// rolled back and replayed, and the per-class interval byte counters (and the
// message totals) must come out identical to a fault-free run — the replay
// must not re-add what the checkpoint already captured, and the aborted
// attempt must not leak partial counts.
func TestCheckpointRewindDoesNotDoubleCountClassBytes(t *testing.T) {
	const n = 8
	counters := []string{
		obs.CIntervalBytesUnit, obs.CIntervalBytesUnbounded,
		obs.CIntervalBytesGeneral, obs.CIntervalBytesEmpty,
		obs.CMessages, obs.CMessageBytes,
	}
	run := func(panicAt, every int) (*obs.Registry, Metrics) {
		t.Helper()
		reg := obs.NewRegistry()
		p := &classByteProgram{n: n, steps: 5, panicRunAt: panicAt}
		e, err := New(n, p, Config{
			NumWorkers:      3,
			PayloadCodec:    codec.Int64{},
			Registry:        reg,
			CheckpointEvery: every,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatalf("Run(panicAt=%d): %v", panicAt, err)
		}
		return reg, *m
	}

	cleanReg, _ := run(0, 0)
	faultReg, fm := run(3, 1)
	if fm.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", fm.Recoveries)
	}
	for _, name := range counters {
		clean, fault := cleanReg.Counter(name).Load(), faultReg.Counter(name).Load()
		if clean != fault {
			t.Errorf("%s = %d after rollback+replay, want %d (fault-free)", name, fault, clean)
		}
	}
	if got := cleanReg.Counter(obs.CIntervalBytesUnit).Load(); got <= 0 {
		t.Fatalf("unit-class bytes = %d, want > 0 — the fixture must exercise the class counters", got)
	}
	if got := cleanReg.Counter(obs.CIntervalBytesGeneral).Load(); got <= 0 {
		t.Fatalf("general-class bytes = %d, want > 0", got)
	}
}
