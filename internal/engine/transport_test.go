package engine

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
)

func TestBatchRoundTrip(t *testing.T) {
	pc := codec.Int64{}
	msgs := []Message{
		{Dst: 3, When: ival.New(2, 9), Value: int64(-7)},
		{Dst: 0, When: ival.From(5), Value: int64(1 << 40)},
		{Dst: 1024, When: ival.Point(0), Value: int64(0)},
	}
	buf := encodeBatch(nil, msgs, pc)
	got, err := decodeBatch(buf, pc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Fatalf("round trip:\n%v\n%v", got, msgs)
	}
	// Empty batch.
	buf = encodeBatch(nil, nil, pc)
	got, err = decodeBatch(buf, pc)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
	// Corruption.
	if _, err := decodeBatch([]byte{0x05, 0x01}, pc); err == nil {
		t.Fatalf("corrupt batch must fail")
	}
}

func TestTCPTransportMesh(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatalf("NewTCPTransport: %v", err)
	}
	defer tr.Close()
	// Everyone sends a tagged frame to everyone else.
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			if err := tr.Send(src, dst, []byte{byte(src*10 + dst)}); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for dst := 0; dst < 3; dst++ {
		batches, err := tr.Recv(dst)
		if err != nil {
			t.Fatalf("recv %d: %v", dst, err)
		}
		if len(batches) != 2 {
			t.Fatalf("recv %d: %d batches", dst, len(batches))
		}
		// Ascending source order.
		want := []byte{}
		for src := 0; src < 3; src++ {
			if src != dst {
				want = append(want, byte(src*10+dst))
			}
		}
		for i, b := range batches {
			if len(b) != 1 || b[0] != want[i] {
				t.Fatalf("recv %d batch %d = %v, want %v", dst, i, b, want[i])
			}
		}
	}
}

// TestEngineOverTCPTransport runs the BFS ring program with every
// cross-worker message traveling through real loopback sockets and checks
// the results match the in-process path.
func TestEngineOverTCPTransport(t *testing.T) {
	const n = 12
	tr, err := NewTCPTransport(4)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	defer tr.Close()
	p := &distProgram{adj: ring(n), dist: make([]int64, n)}
	e, err := New(n, p, Config{NumWorkers: 4, PayloadCodec: codec.Int64{}, Transport: tr})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if p.dist[i] != int64(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, p.dist[i], i)
		}
	}
	if m.Messages != int64(n) {
		t.Errorf("messages = %d, want %d", m.Messages, n)
	}
}

func TestTransportRequiresCodec(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	defer tr.Close()
	p := &countProgram{limit: 2}
	if _, err := New(4, p, Config{NumWorkers: 2, Transport: tr}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestTCPTransportRejectsZeroWorkers(t *testing.T) {
	if _, err := NewTCPTransport(0); err == nil {
		t.Fatalf("want error for zero workers")
	}
	// A single worker mesh is trivially fine (no connections).
	tr, err := NewTCPTransport(1)
	if err != nil {
		t.Fatalf("single worker: %v", err)
	}
	tr.Close()
}

// TestTransportFailureSurfaces kills the mesh mid-run and checks the engine
// reports the failure instead of hanging or silently dropping messages.
func TestTransportFailureSurfaces(t *testing.T) {
	const n = 8
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	tr.Close() // all connections are already dead
	p := &distProgram{adj: ring(n), dist: make([]int64, n)}
	e, err := New(n, p, Config{NumWorkers: 2, PayloadCodec: codec.Int64{}, Transport: tr})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatalf("run over a closed transport must fail")
	}
}

// TestTCPTransportNilConnGuard exercises the missing-connection and bounds
// guards directly: both must be descriptive errors, never nil dereferences.
func TestTCPTransportNilConnGuard(t *testing.T) {
	tr := &TCPTransport{n: 2, send: connMatrix(2), recv: connMatrix(2)}
	if err := tr.Send(0, 1, []byte{1}); err == nil {
		t.Fatalf("send over missing connection must fail")
	}
	if _, err := tr.Recv(1); err == nil {
		t.Fatalf("recv over missing connection must fail")
	}
	if err := tr.Send(0, 5, nil); err == nil {
		t.Fatalf("out-of-range dst must fail")
	}
	if err := tr.Send(1, 1, nil); err == nil {
		t.Fatalf("self send must fail")
	}
	if _, err := tr.Recv(-1); err == nil {
		t.Fatalf("out-of-range recv worker must fail")
	}
}

// TestTCPTransportRecvTimeout checks a silent peer surfaces as a timeout
// error instead of blocking the barrier forever.
func TestTCPTransportRecvTimeout(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, TCPOptions{IOTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	defer tr.Close()
	start := time.Now()
	if _, err := tr.Recv(1); err == nil {
		t.Fatalf("recv with no sender must time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
}

// TestDialRetryLateListener verifies mesh setup survives a peer that binds
// late: dialRetry keeps retrying with backoff until the listener appears.
func TestDialRetryLateListener(t *testing.T) {
	// Reserve a port, free it, then rebind it shortly after the first dial
	// attempt has already failed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will be skipped
		}
		defer ln2.Close()
		if conn, err := ln2.Accept(); err == nil {
			conn.Close()
		}
	}()
	conn, err := dialRetry(addr, 10, 5*time.Millisecond, time.Now().Add(5*time.Second))
	if err != nil {
		t.Skipf("port rebind raced: %v", err)
	}
	conn.Close()
	<-done
}
