package engine

import "sync"

// Aggregator folds values contributed by vertices during a superstep into a
// single value visible to the master and to all vertices in the next
// superstep (Giraph-style aggregators). Create instances with NewAggregator.
type Aggregator struct {
	identity any
	reduce   func(a, b any) any

	mu  sync.Mutex
	cur any
	set bool
}

// NewAggregator builds an aggregator with the given identity value and a
// commutative, associative reduce function.
func NewAggregator(identity any, reduce func(a, b any) any) *Aggregator {
	return &Aggregator{identity: identity, reduce: reduce}
}

// SumInt64 returns an aggregator summing int64 contributions.
func SumInt64() *Aggregator {
	return NewAggregator(int64(0), func(a, b any) any { return a.(int64) + b.(int64) })
}

// MinInt64 returns an aggregator taking the minimum of int64 contributions.
func MinInt64(identity int64) *Aggregator {
	return NewAggregator(identity, func(a, b any) any {
		if a.(int64) < b.(int64) {
			return a
		}
		return b
	})
}

// BoolOr returns an aggregator OR-ing boolean contributions.
func BoolOr() *Aggregator {
	return NewAggregator(false, func(a, b any) any { return a.(bool) || b.(bool) })
}

// SumFloat64 returns an aggregator summing float64 contributions.
func SumFloat64() *Aggregator {
	return NewAggregator(float64(0), func(a, b any) any { return a.(float64) + b.(float64) })
}

func (a *Aggregator) accumulate(v any) {
	a.mu.Lock()
	if !a.set {
		a.cur, a.set = v, true
	} else {
		a.cur = a.reduce(a.cur, v)
	}
	a.mu.Unlock()
}

// drain returns the merged value and resets the aggregator for the next
// superstep.
func (a *Aggregator) drain() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := a.identity
	if a.set {
		v = a.cur
	}
	a.cur, a.set = nil, false
	return v
}
