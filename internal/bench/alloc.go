package bench

import (
	"fmt"
	"io"
	"runtime"

	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

// --- alloc: bytes allocated per ICM run (GC pressure on the hot path) ---

// AllocRow reports the heap traffic of one (graph, algorithm) ICM run:
// total bytes and object allocations attributed to the run, plus the same
// normalized per superstep — the number the pooled hot path is meant to
// drive toward zero at steady state.
type AllocRow struct {
	Graph          string
	Algo           Algo
	Supersteps     int
	Bytes          uint64 // heap bytes allocated during the run
	Objects        uint64 // heap objects allocated during the run
	BytesPerStep   uint64
	ObjectsPerStep uint64
}

// AllocAlgos are the algorithms measured by the alloc experiment: the two
// alloc-gate algorithms (SSSP, PR) plus BFS and EAT for breadth.
var AllocAlgos = []Algo{BFS, PR, SSSP, EAT}

// Alloc measures heap allocation per ICM run on every dataset profile. Each
// run is measured with runtime.MemStats deltas around it; a warm-up run per
// (graph, algorithm) pair lets pools and grow-only buffers reach steady
// state first so the measurement reflects the recurring cost, not one-time
// warm-up growth.
func Alloc(cfg Config) ([]AllocRow, error) {
	ds, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AllocRow
	for _, d := range ds {
		for _, al := range AllocAlgos {
			row, err := allocRun(cfg, al, d.Graph)
			if err != nil {
				return nil, fmt.Errorf("bench: alloc %s/%s: %w", d.Profile.Name, al, err)
			}
			row.Graph = d.Profile.Name
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func allocRun(cfg Config, al Algo, g *tgraph.Graph) (AllocRow, error) {
	source := g.VertexAt(0).ID
	target := g.VertexAt(g.NumVertices() - 1).ID
	// Warm-up run: grow-only buffers and pools reach steady state.
	if _, err := runICM(cfg, al, g, source, target, cfg.Workers); err != nil {
		return AllocRow{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := runICM(cfg, al, g, source, target, cfg.Workers)
	if err != nil {
		return AllocRow{}, err
	}
	runtime.ReadMemStats(&after)
	row := AllocRow{
		Algo:       al,
		Supersteps: int(r.Metrics.Supersteps),
		Bytes:      after.TotalAlloc - before.TotalAlloc,
		Objects:    after.Mallocs - before.Mallocs,
	}
	if row.Supersteps > 0 {
		row.BytesPerStep = row.Bytes / uint64(row.Supersteps)
		row.ObjectsPerStep = row.Objects / uint64(row.Supersteps)
	}
	return row, nil
}

// RenderAlloc prints the allocation table.
func RenderAlloc(w io.Writer, rows []AllocRow) {
	fmt.Fprintln(w, "Alloc: heap traffic per ICM run (steady state, after one warm-up run)")
	t := stats.Table{Header: []string{
		"Graph", "Algo", "Supersteps", "Bytes", "Objects", "Bytes/step", "Objects/step",
	}}
	var totalBytes, totalObjects uint64
	for _, r := range rows {
		totalBytes += r.Bytes
		totalObjects += r.Objects
		t.Add(r.Graph, string(r.Algo), r.Supersteps, r.Bytes, r.Objects, r.BytesPerStep, r.ObjectsPerStep)
	}
	t.Add("TOTAL", "", "", totalBytes, totalObjects, "", "")
	t.Render(w)
}
