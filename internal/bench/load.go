package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
	"graphite/internal/live"
	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

// --- load: graph-load latency across formats, and compacted recovery ---
//
// Two measurements on the storage layer:
//
//  1. Format load latency: the same generated graph written as text,
//     binary, and the mmap-able snapshot; each is opened loadRuns times and
//     the median wall time reported. The snapshot has two rows — verified
//     (every section CRC checked, touching all pages) and trusted (header
//     and directory only, pages fault in on demand) — and the trusted open
//     must beat the text parse by at least loadMinSpeedup, or the
//     experiment fails: that ratio is the point of the format.
//  2. Compacted recovery: the same event stream is recovered twice, once by
//     replaying the full WAL and once from a snapshot compacted at ~75% of
//     ingest plus the WAL tail. The tail must be strictly shorter than the
//     full history and both recoveries must produce byte-identical graphs.
//
// Every timing row is backed by an identity check: EAT, SSSP and PageRank
// run over the mapped snapshot must match the text-parsed graph vertex for
// vertex, so speed never comes from answering on different data.

// loadRuns is how many measured opens back each timing; medians are
// reported.
const loadRuns = 5

// loadMinSpeedup is the acceptance floor for trusted-mmap open vs text
// parse.
const loadMinSpeedup = 10.0

// loadCompactFrac places the compaction at this fraction of the ingested
// batches.
const loadCompactFrac = 0.75

// LoadFormatRow is one format's size and median open latency.
type LoadFormatRow struct {
	Format  string  `json:"format"`
	Bytes   int64   `json:"bytes"`
	OpenMS  float64 `json:"open_ms"`
	Speedup float64 `json:"speedup_vs_text"` // text parse wall / this open wall
}

// LoadReport is the load experiment artifact (BENCH_load.json).
type LoadReport struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Runs     int    `json:"runs_per_cell"`
	// Formats: text parse, binary decode, snapshot verified, snapshot
	// trusted (mmap, CRCs skipped).
	Formats []LoadFormatRow `json:"formats"`
	// MappedIdentical records the algorithm-identity check over the mapped
	// snapshot (the experiment fails if any vertex diverges).
	MappedIdentical bool `json:"mapped_identical"`
	// WAL recovery: full replay vs compacted snapshot + tail.
	TotalEvents       int     `json:"total_events"`
	TailEvents        int     `json:"tail_events"` // replayed after the snapshot
	ReplayMS          float64 `json:"replay_ms"`   // full-log recovery
	CompactedOpenMS   float64 `json:"compacted_open_ms"`
	SnapshotBytes     int64   `json:"snapshot_bytes"`
	WALBytesFull      int64   `json:"wal_bytes_full"`
	WALBytesCompacted int64   `json:"wal_bytes_compacted"`
}

// medianOpenMS times fn loadRuns times (after one warm-up) and returns the
// median wall in milliseconds.
func medianOpenMS(fn func() error) (float64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	walls := make([]time.Duration, 0, loadRuns)
	for i := 0; i < loadRuns; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		walls = append(walls, time.Since(start))
	}
	sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
	return float64(walls[len(walls)/2].Nanoseconds()) / 1e6, nil
}

// Load runs the load experiment.
func Load(cfg Config) (*LoadReport, error) {
	// webuk is the densest Table 1 profile: the largest file of the set,
	// which is where load latency differences matter.
	profile := gen.WebUKLike(cfg.Scale)
	g, err := gen.Generate(profile, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: load generate: %w", err)
	}
	dir, err := os.MkdirTemp("", "graphite-load-*")
	if err != nil {
		return nil, fmt.Errorf("bench: load scratch dir: %w", err)
	}
	defer os.RemoveAll(dir)

	rep := &LoadReport{
		Graph:    profile.Name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Runs:     loadRuns,
	}

	textPath := filepath.Join(dir, "g.tg")
	binPath := filepath.Join(dir, "g.tgb")
	snapPath := filepath.Join(dir, "g.gsn")
	if err := tgraph.WriteFile(textPath, g); err != nil {
		return nil, err
	}
	if err := tgraph.WriteBinaryFile(binPath, g); err != nil {
		return nil, err
	}
	if err := tgraph.WriteSnapshotFile(snapPath, g); err != nil {
		return nil, err
	}

	fileSize := func(path string) int64 {
		st, err := os.Stat(path)
		if err != nil {
			return -1
		}
		return st.Size()
	}
	cells := []struct {
		format string
		path   string
		open   func() error
	}{
		{"text", textPath, func() error { _, err := tgraph.ReadFile(textPath); return err }},
		{"binary", binPath, func() error { _, err := tgraph.ReadBinaryFile(binPath); return err }},
		{"snapshot-verified", snapPath, func() error {
			m, err := tgraph.OpenMapped(snapPath)
			if err != nil {
				return err
			}
			return m.Close()
		}},
		{"snapshot-trusted", snapPath, func() error {
			m, err := tgraph.OpenMappedTrusted(snapPath)
			if err != nil {
				return err
			}
			return m.Close()
		}},
	}
	for _, c := range cells {
		ms, err := medianOpenMS(c.open)
		if err != nil {
			return nil, fmt.Errorf("bench: load %s: %w", c.format, err)
		}
		rep.Formats = append(rep.Formats, LoadFormatRow{Format: c.format, Bytes: fileSize(c.path), OpenMS: ms})
	}
	textMS := rep.Formats[0].OpenMS
	for i := range rep.Formats {
		if rep.Formats[i].OpenMS > 0 {
			rep.Formats[i].Speedup = textMS / rep.Formats[i].OpenMS
		}
	}
	trusted := rep.Formats[len(rep.Formats)-1]
	if trusted.Speedup < loadMinSpeedup {
		return nil, fmt.Errorf("bench: load: trusted mmap open is only %.1fx faster than text parse (want >= %.0fx): %.3fms vs %.3fms",
			trusted.Speedup, loadMinSpeedup, trusted.OpenMS, textMS)
	}

	// Identity: algorithms over the mapped snapshot must match the parsed
	// text graph vertex for vertex.
	if err := loadIdentity(textPath, snapPath, cfg.Workers, cfg.PRIterations); err != nil {
		return nil, fmt.Errorf("bench: load identity: %w", err)
	}
	rep.MappedIdentical = true

	// WAL recovery: full replay vs compacted snapshot + tail.
	if err := loadRecovery(cfg, dir, rep); err != nil {
		return nil, fmt.Errorf("bench: load recovery: %w", err)
	}
	return rep, nil
}

// loadIdentity runs EAT, SSSP and PageRank over the text-parsed and the
// mapped graphs and requires identical per-vertex states.
func loadIdentity(textPath, snapPath string, workers, prIters int) error {
	gt, err := tgraph.ReadFile(textPath)
	if err != nil {
		return err
	}
	m, err := tgraph.OpenMapped(snapPath)
	if err != nil {
		return err
	}
	defer m.Close()
	src := gt.VertexAt(0).ID
	runs := []struct {
		name string
		run  func(g *tgraph.Graph) (*core.Result, error)
	}{
		{"eat", func(g *tgraph.Graph) (*core.Result, error) { return algorithms.RunEAT(g, src, 0, workers) }},
		{"sssp", func(g *tgraph.Graph) (*core.Result, error) { return algorithms.RunSSSP(g, src, 0, workers) }},
		{"pr", func(g *tgraph.Graph) (*core.Result, error) { return algorithms.RunPageRank(g, prIters, workers) }},
	}
	for _, r := range runs {
		rt, err := r.run(gt)
		if err != nil {
			return fmt.Errorf("%s on text graph: %w", r.name, err)
		}
		rm, err := r.run(m.Graph)
		if err != nil {
			return fmt.Errorf("%s on mapped graph: %w", r.name, err)
		}
		for v := 0; v < gt.NumVertices(); v++ {
			st, sm := rt.State(v), rm.State(v)
			if (st == nil) != (sm == nil) {
				return fmt.Errorf("%s vertex %d: state presence diverges between text and mapped", r.name, v)
			}
			if st != nil && !reflect.DeepEqual(st.Parts(), sm.Parts()) {
				return fmt.Errorf("%s vertex %d diverges between text and mapped graphs", r.name, v)
			}
		}
	}
	return nil
}

// loadRecovery ingests the chain stream twice — one WAL left whole, one
// compacted at ~75% — and times both recoveries, requiring the compacted
// path to replay a strict tail and produce the identical graph.
func loadRecovery(cfg Config, dir string, rep *LoadReport) error {
	vertices := int(1500 * float64(cfg.Scale))
	if vertices < 60 {
		vertices = 60
	}
	const perBatch = 30
	batches := vertices / perBatch
	horizon := ival.Time(vertices)
	fullPath := filepath.Join(dir, "full.wal")
	compPath := filepath.Join(dir, "comp.wal")
	opts := func(name string) live.Options {
		return live.Options{Name: name, Horizon: horizon, NoSync: true}
	}
	full, err := live.Open(fullPath, opts("load-full"))
	if err != nil {
		return err
	}
	comp, err := live.Open(compPath, opts("load-comp"))
	if err != nil {
		return err
	}
	compactAt := int(float64(batches) * loadCompactFrac)
	for i := 0; i < batches; i++ {
		b := streamBatch(i*perBatch, (i+1)*perBatch)
		if _, err := full.Apply(b); err != nil {
			return fmt.Errorf("ingest batch %d: %w", i, err)
		}
		if _, err := comp.Apply(b); err != nil {
			return fmt.Errorf("ingest batch %d (compacted log): %w", i, err)
		}
		if i == compactAt {
			st, err := comp.Compact()
			if err != nil {
				return fmt.Errorf("compact at batch %d: %w", i, err)
			}
			rep.SnapshotBytes = st.SnapshotBytes
		}
	}
	rep.TotalEvents = full.Info().Events
	full.Close()
	comp.Close()
	rep.WALBytesFull = size(fullPath)
	rep.WALBytesCompacted = size(compPath)

	reopen := func(path, name string) (*live.Graph, float64, error) {
		var g *live.Graph
		ms, err := medianOpenMS(func() error {
			if g != nil {
				g.Close()
			}
			var err error
			g, err = live.Open(path, opts(name))
			return err
		})
		return g, ms, err
	}
	gFull, replayMS, err := reopen(fullPath, "load-full")
	if err != nil {
		return err
	}
	defer gFull.Close()
	gComp, compMS, err := reopen(compPath, "load-comp")
	if err != nil {
		return err
	}
	defer gComp.Close()
	rep.ReplayMS, rep.CompactedOpenMS = replayMS, compMS

	recF, recC := gFull.LastRecovery(), gComp.LastRecovery()
	rep.TailEvents = recC.TailEvents
	if recF.FromSnapshot || recF.TailEvents != rep.TotalEvents {
		return fmt.Errorf("full-log recovery unexpectedly partial: %+v", recF)
	}
	if !recC.FromSnapshot || recC.TailEvents >= rep.TotalEvents {
		return fmt.Errorf("compacted recovery replayed %d of %d events — not a strict tail (%+v)",
			recC.TailEvents, rep.TotalEvents, recC)
	}
	epF, epC := gFull.Acquire(), gComp.Acquire()
	defer epF.Release()
	defer epC.Release()
	var bufF, bufC bytes.Buffer
	if err := tgraph.WriteBinary(&bufF, epF.Graph()); err != nil {
		return err
	}
	if err := tgraph.WriteBinary(&bufC, epC.Graph()); err != nil {
		return err
	}
	if !bytes.Equal(bufF.Bytes(), bufC.Bytes()) {
		return fmt.Errorf("compacted recovery and full replay produced different graphs")
	}
	return nil
}

func size(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return st.Size()
}

// RenderLoad prints the load experiment tables.
func RenderLoad(w io.Writer, rep *LoadReport) {
	fmt.Fprintf(w, "Load: graph %q (%d vertices, %d edges), median of %d opens; mapped-vs-text identity: %v\n",
		rep.Graph, rep.Vertices, rep.Edges, rep.Runs, rep.MappedIdentical)
	t := stats.Table{Header: []string{"Format", "Bytes", "Open ms", "vs text"}}
	for _, r := range rep.Formats {
		t.Add(r.Format, r.Bytes, fmt.Sprintf("%.3f", r.OpenMS), fmt.Sprintf("%.1fx", r.Speedup))
	}
	t.Render(w)
	fmt.Fprintf(w, "recovery: full replay of %d events in %.2f ms (WAL %d bytes); compacted open %.2f ms replaying a %d-event tail (snapshot %d + WAL %d bytes)\n",
		rep.TotalEvents, rep.ReplayMS, rep.WALBytesFull,
		rep.CompactedOpenMS, rep.TailEvents, rep.SnapshotBytes, rep.WALBytesCompacted)
}

// WriteLoadJSON writes the report as indented JSON (the BENCH_load.json
// artifact the Makefile target records).
func WriteLoadJSON(path string, rep *LoadReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
