package bench

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/chaos"
	"graphite/internal/core"
	"graphite/internal/stats"
)

// ChaosRow reports one SSSP run of the fault-tolerance demonstration.
type ChaosRow struct {
	Mode        string // "fault-free" or "chaos"
	Makespan    time.Duration
	Supersteps  int
	Messages    int64
	Faults      int // injected transport faults (drops+corruptions+duplicates)
	Panics      int // injected user-program panics
	Checkpoints int
	Recoveries  int
	Match       bool // per-vertex results identical to the fault-free run
}

// Chaos runs temporal SSSP over the first dataset profile twice — once clean
// and once under seeded fault injection (transport drops, corruption,
// duplication, delays, plus an injected vertex panic) with superstep
// checkpointing enabled — and verifies the recovered run decodes to the
// identical answer with identical deterministic counters.
func Chaos(cfg Config) ([]ChaosRow, error) {
	ds, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	g := ds[0].Graph
	source := g.VertexAt(0).ID

	run := func(tr *chaos.Transport, fp *chaos.FaultyProgram, checkpointEvery int) (*core.Result, error) {
		a := &algorithms.SSSP{Source: source, StartTime: 0}
		opts := a.Options()
		opts.NumWorkers = cfg.Workers
		opts.CheckpointEvery = checkpointEvery
		opts.MaxRecoveries = 20
		if tr != nil {
			opts.Transport = tr
		}
		if fp != nil {
			opts.WrapProgram = fp.Wrap
		}
		opts.Tracer = cfg.Tracer
		opts.Registry = cfg.Registry
		return core.Run(g, a, opts)
	}

	base, err := run(nil, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: fault-free SSSP: %w", err)
	}

	tr, err := chaos.NewTransport(cfg.Workers, chaos.TransportOptions{
		Seed: cfg.Seed, Drops: 2, Corruptions: 2, Duplicates: 1, Delays: 2, Every: 25,
	})
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	fp := chaos.NewFaultyProgram(chaos.PanicPlan{Superstep: 2, Vertex: chaos.AnyVertex})
	got, err := run(tr, fp, 2)
	if err != nil {
		return nil, fmt.Errorf("bench: chaos SSSP did not recover: %w", err)
	}

	match := true
	for i := 0; i < g.NumVertices(); i++ {
		id := g.VertexAt(i).ID
		if !reflect.DeepEqual(algorithms.SSSPCosts(base, id), algorithms.SSSPCosts(got, id)) {
			match = false
			break
		}
	}
	match = match && base.Metrics.Supersteps == got.Metrics.Supersteps &&
		base.Metrics.Messages == got.Metrics.Messages

	rows := []ChaosRow{
		{
			Mode: "fault-free", Makespan: base.Metrics.Makespan,
			Supersteps: base.Metrics.Supersteps, Messages: base.Metrics.Messages,
			Match: true,
		},
		{
			Mode: "chaos", Makespan: got.Metrics.Makespan,
			Supersteps: got.Metrics.Supersteps, Messages: got.Metrics.Messages,
			Faults: tr.Stats().Faults(), Panics: fp.Panics(),
			Checkpoints: got.Metrics.Checkpoints, Recoveries: got.Metrics.Recoveries,
			Match: match,
		},
	}
	return rows, nil
}

// RenderChaos prints the fault-tolerance demonstration.
func RenderChaos(w io.Writer, rows []ChaosRow) {
	fmt.Fprintln(w, "Fault tolerance: SSSP under seeded transport faults and an injected panic, checkpointing every 2 supersteps")
	t := stats.Table{Header: []string{"Mode", "Makespan", "Supersteps", "Messages", "Faults", "Panics", "Checkpoints", "Recoveries", "Match"}}
	for _, r := range rows {
		t.Add(r.Mode, r.Makespan.Round(time.Microsecond), r.Supersteps, r.Messages,
			r.Faults, r.Panics, r.Checkpoints, r.Recoveries, r.Match)
	}
	t.Render(w)
}
