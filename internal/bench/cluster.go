package bench

// --- cluster: relay vs direct data plane over partitioned shards ---
//
// The experiment prices the coordinator star topology against the direct
// worker-to-worker mesh: the same PageRank computation runs twice over the
// same per-shard partition files — once with every message batch relayed
// through the coordinator, once shipped peer-to-peer — and the report
// records both makespans plus the byte counters proving which plane
// carried the traffic (a correct direct run relays ~nothing). Both runs
// must be bit-identical to a single-process transported run: the mesh may
// only move bytes, never reorder arithmetic.
//
// PageRank is the deliberate choice for the same reason as the recovery
// experiment: a float fold is arrival-order-sensitive, so a data plane
// that perturbed delivery order would fail the identity check rather than
// hide inside timings.
//
// The partition sweep quantifies the second claim — per-worker resident
// graph bytes shrink as the cut widens — by cutting the same graph at
// several widths and recording the largest per-shard file against the
// full-graph copy.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/gen"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

// clusterBenchWorkers is the fleet width of the two measured runs.
const clusterBenchWorkers = 3

// PlaneRun is one measured cluster run on one data plane.
type PlaneRun struct {
	Plane      string  `json:"plane"`
	MakespanMS float64 `json:"makespan_ms"`
	Supersteps int     `json:"supersteps"`
	// RelayBytes is the batch volume the coordinator forwarded; DirectBytes
	// the volume shipped worker-to-worker. One of the two is ~zero per run.
	RelayBytes  int64 `json:"relay_bytes"`
	DirectBytes int64 `json:"direct_bytes"`
	// Identical confirms the run matched the single-process transported
	// reference vertex for vertex (the experiment fails otherwise).
	Identical bool `json:"identical"`
}

// PartitionCut is one width of the partition sweep.
type PartitionCut struct {
	Shards        int   `json:"shards"`
	FullBytes     int64 `json:"full_bytes"`
	MaxShardBytes int64 `json:"max_shard_bytes"`
}

// ClusterReport is the BENCH_cluster.json artifact.
type ClusterReport struct {
	Algo     string `json:"algo"`
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Workers  int    `json:"workers"`
	// Runs holds the relay run then the direct run, over identical
	// partition files and worker counts.
	Runs []PlaneRun `json:"runs"`
	// WorkerGraphBytes is each shard's resident mapped partition size in
	// the measured runs — all strictly smaller than the full-graph copy.
	WorkerGraphBytes []int64        `json:"worker_graph_bytes"`
	Cuts             []PartitionCut `json:"partition_cuts"`
}

// ClusterBench runs the data-plane experiment with in-process workers over
// loopback TCP (the protocol is identical to the multi-process runtime; the
// kill matrix in internal/chaos covers real processes).
func ClusterBench(cfg Config) (*ClusterReport, error) {
	p := gen.SkewedLike(cfg.Scale)
	g, err := gen.Generate(p, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", p.Name, err)
	}
	scratch, err := os.MkdirTemp("", "graphite-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	// One partition directory for the measured runs, plus the sweep.
	partDir := filepath.Join(scratch, fmt.Sprintf("parts-%d", clusterBenchWorkers))
	infos, err := cluster.WritePartitions(g, partDir, clusterBenchWorkers)
	if err != nil {
		return nil, err
	}
	var cuts []PartitionCut
	for _, n := range []int{2, clusterBenchWorkers, 4} {
		dir := partDir
		cutInfos := infos
		if n != clusterBenchWorkers {
			dir = filepath.Join(scratch, fmt.Sprintf("parts-%d", n))
			if cutInfos, err = cluster.WritePartitions(g, dir, n); err != nil {
				return nil, err
			}
		}
		cut := PartitionCut{Shards: n, FullBytes: cutInfos[0].Bytes}
		for _, pi := range cutInfos[1:] {
			if pi.Bytes > cut.MaxShardBytes {
				cut.MaxShardBytes = pi.Bytes
			}
		}
		cuts = append(cuts, cut)
	}

	iters := cfg.PRIterations
	if iters <= 0 {
		iters = 10
	}
	params := algorithms.Params{Iterations: iters}

	// The identity reference: one process, same worker count, transported
	// exchange — the delivery order every cluster plane must reproduce. It
	// must also adopt the assignment embedded in the partition files: vertex
	// placement decides message fold order, and float folds see the
	// difference.
	gm, pmeta, err := cluster.LoadGraphShard("shard:"+partDir, -1)
	if err != nil {
		return nil, err
	}
	defer gm.Close()
	prog, opts, err := algorithms.New(g, "pr", params)
	if err != nil {
		return nil, err
	}
	opts.NumWorkers = clusterBenchWorkers
	opts.Partitioner = pmeta.Partitioner()
	tp, err := engine.NewTCPTransport(clusterBenchWorkers)
	if err != nil {
		return nil, err
	}
	opts.Transport = tp
	want, err := core.Run(g, prog, opts)
	tp.Close()
	if err != nil {
		return nil, err
	}

	rep := &ClusterReport{
		Algo:     "pr",
		Graph:    p.Name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Workers:  clusterBenchWorkers,
		Cuts:     cuts,
	}
	for _, plane := range []string{cluster.PlaneRelay, cluster.PlaneDirect} {
		run, graphBytes, err := clusterPlaneRun(g, "shard:"+partDir, params, plane,
			filepath.Join(scratch, "run-"+plane), want)
		if err != nil {
			return nil, fmt.Errorf("bench: %s run: %w", plane, err)
		}
		rep.Runs = append(rep.Runs, *run)
		rep.WorkerGraphBytes = graphBytes
	}
	return rep, nil
}

// clusterPlaneRun measures one cluster run on one plane and verifies it
// against the reference result.
func clusterPlaneRun(g *tgraph.Graph, spec string, params algorithms.Params,
	plane, base string, want *core.Result) (*PlaneRun, []int64, error) {
	reg := obs.NewRegistry()
	coord, err := cluster.New(cluster.Config{
		Workers:   clusterBenchWorkers,
		Graph:     spec,
		Algo:      "pr",
		Params:    params,
		DataPlane: plane,
		Registry:  reg,
	})
	if err != nil {
		return nil, nil, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	type outcome struct {
		res *core.Result
		err error
	}
	out := make(chan outcome, 1)
	go func() {
		res, err := coord.Serve(ln)
		out <- outcome{res, err}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < clusterBenchWorkers; i++ {
		dir := filepath.Join(base, fmt.Sprintf("w%d", i))
		go func() {
			err := cluster.RunWorker(ctx, cluster.WorkerConfig{
				Addr: ln.Addr().String(), Dir: dir, DataPlane: plane,
			})
			if err != nil && ctx.Err() == nil {
				select {
				case out <- outcome{err: fmt.Errorf("worker %s: %w", filepath.Base(dir), err)}:
				default:
				}
			}
		}()
	}
	var o outcome
	select {
	case o = <-out:
	case <-time.After(3 * time.Minute):
		return nil, nil, fmt.Errorf("cluster run timed out")
	}
	if o.err != nil {
		return nil, nil, o.err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !reflect.DeepEqual(o.res.State(v).Parts(), want.State(v).Parts()) {
			return nil, nil, fmt.Errorf("plane %s diverged at vertex %d: got %v, want %v",
				plane, v, o.res.State(v).Parts(), want.State(v).Parts())
		}
	}
	crep := coord.Report()
	if crep.DataPlane != plane {
		return nil, nil, fmt.Errorf("run finished on plane %q, configured %q", crep.DataPlane, plane)
	}
	return &PlaneRun{
		Plane:       plane,
		MakespanMS:  ms(crep.Makespan),
		Supersteps:  crep.Supersteps,
		RelayBytes:  reg.Counter(obs.CClusterRelayBytes).Load(),
		DirectBytes: reg.Counter(obs.CClusterDirectBytes).Load(),
		Identical:   true,
	}, crep.WorkerGraphBytes, nil
}

// RenderCluster prints the data-plane experiment summary.
func RenderCluster(w io.Writer, rep *ClusterReport) {
	fmt.Fprintf(w, "Cluster data plane: %s on %q (%d vertices, %d edges, %d workers, partitioned shards)\n",
		rep.Algo, rep.Graph, rep.Vertices, rep.Edges, rep.Workers)
	for _, r := range rep.Runs {
		fmt.Fprintf(w, "  %-7s makespan %10.2f ms   relayed %10d B   direct %10d B   identical %v\n",
			r.Plane, r.MakespanMS, r.RelayBytes, r.DirectBytes, r.Identical)
	}
	fmt.Fprintf(w, "  resident graph per worker:")
	for s, b := range rep.WorkerGraphBytes {
		fmt.Fprintf(w, "  shard%d=%dB", s, b)
	}
	fmt.Fprintln(w)
	for _, c := range rep.Cuts {
		fmt.Fprintf(w, "  cut N=%d: largest shard %10d B of %10d B full (%.0f%%)\n",
			c.Shards, c.MaxShardBytes, c.FullBytes, 100*float64(c.MaxShardBytes)/float64(c.FullBytes))
	}
}

// WriteClusterJSON writes the report as indented JSON (the
// BENCH_cluster.json artifact the cluster-bench target records).
func WriteClusterJSON(path string, rep *ClusterReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
