package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/chaos"
	"graphite/internal/cluster"
	"graphite/internal/core"
	"graphite/internal/gen"
	"graphite/internal/tgraph"
)

// --- recovery: cluster kill-9 MTTR on a generated graph ---
//
// The experiment measures what a worker death actually costs the cluster
// runtime: a coordinator and real worker processes run PageRank over a
// generated power-law graph, one worker is SIGKILLed mid-superstep by a
// planted crash, the fleet respawns it on the same checkpoint directory,
// and the run completes from the last committed checkpoint generation. The
// report records detection latency, MTTR (detection to resumed superstep
// broadcast), replayed supersteps and restored checkpoint bytes — and
// proves the recovered result bit-identical to a fault-free cluster run.
//
// PageRank is the deliberate choice: its superstep count is fixed by the
// iteration budget (so the planted kill superstep always exists) and its
// float fold is arrival-order-sensitive (so any divergence in replay
// ordering shows up in the identity check, not just in timings).

// recoveryWorkers is the worker process count; three is the smallest fleet
// where a death leaves a surviving majority to roll back.
const recoveryWorkers = 3

// recoveryKillStep is the superstep whose compute phase the victim dies in.
// With the checkpoint cadence k=2, an even kill superstep s never closes,
// so the last committed generation is (s-2)/2 and at least one superstep is
// always replayed.
const recoveryKillStep = 6

// RecoveryKill names the planted failure.
type RecoveryKill struct {
	Worker    int    `json:"worker"`
	Phase     string `json:"phase"`
	Superstep int    `json:"superstep"`
}

// RecoveryReport is the BENCH_recovery.json artifact.
type RecoveryReport struct {
	Algo            string       `json:"algo"`
	Graph           string       `json:"graph"`
	Vertices        int          `json:"vertices"`
	Edges           int          `json:"edges"`
	Workers         int          `json:"workers"`
	CheckpointEvery int          `json:"checkpoint_every"`
	Kill            RecoveryKill `json:"kill"`
	// FaultFreeMS and FaultedMS are the two runs' makespans; their gap is
	// the end-to-end price of the kill, of which MTTRMS is the coordinator's
	// share (detection to resumed superstep broadcast) and DetectMS the
	// silence observed before declaring the worker dead.
	FaultFreeMS float64 `json:"fault_free_ms"`
	FaultedMS   float64 `json:"faulted_ms"`
	DetectMS    float64 `json:"detect_ms"`
	MTTRMS      float64 `json:"mttr_ms"`
	// Supersteps counts executed supersteps of the faulted run, replays
	// included; ReplayedSupersteps is how many of them were re-execution.
	Supersteps         int   `json:"supersteps"`
	ReplayedSupersteps int   `json:"replayed_supersteps"`
	RecoveryBytes      int64 `json:"recovery_bytes"`
	Recoveries         int   `json:"recoveries"`
	Respawns           int   `json:"respawns"`
	// Identical confirms the recovered result matched the fault-free run
	// vertex for vertex (the experiment fails before reporting otherwise).
	Identical bool `json:"identical"`
}

// Recovery runs the kill-9 MTTR experiment. The caller's binary MUST call
// chaos.RunChildWorker first thing in main: worker processes are
// re-executions of it.
func Recovery(cfg Config) (*RecoveryReport, error) {
	p := gen.SkewedLike(cfg.Scale)
	g, err := gen.Generate(p, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", p.Name, err)
	}
	scratch, err := os.MkdirTemp("", "graphite-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	gpath := filepath.Join(scratch, "graph.tg")
	if err := tgraph.WriteFile(gpath, g); err != nil {
		return nil, err
	}

	iters := cfg.PRIterations
	if iters <= recoveryKillStep {
		iters = recoveryKillStep + 2 // the kill superstep must exist
	}
	ccfg := cluster.Config{
		Workers:         recoveryWorkers,
		Graph:           "file:" + gpath,
		Algo:            "pr",
		Params:          algorithms.Params{Iterations: iters},
		CheckpointEvery: cluster.DefaultCheckpointEvery,
		Lease:           500 * time.Millisecond,
		RejoinTimeout:   60 * time.Second,
		Registry:        cfg.Registry,
		Tracer:          cfg.Tracer,
	}
	kill := RecoveryKill{Worker: 1, Phase: "compute", Superstep: recoveryKillStep}

	want, cleanRep, _, err := recoveryRun(ccfg, filepath.Join(scratch, "clean"), nil)
	if err != nil {
		return nil, fmt.Errorf("bench: recovery fault-free run: %w", err)
	}
	if len(cleanRep.Recoveries) != 0 {
		return nil, fmt.Errorf("bench: recovery fault-free run recovered %d times", len(cleanRep.Recoveries))
	}
	crash := map[int]string{kill.Worker: fmt.Sprintf("%s:%d", kill.Phase, kill.Superstep)}
	got, rep, respawns, err := recoveryRun(ccfg, filepath.Join(scratch, "faulted"), crash)
	if err != nil {
		return nil, fmt.Errorf("bench: recovery faulted run: %w", err)
	}
	if len(rep.Recoveries) == 0 {
		return nil, fmt.Errorf("bench: planted kill produced no recovery (respawns=%d)", respawns)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !reflect.DeepEqual(got.State(v).Parts(), want.State(v).Parts()) {
			return nil, fmt.Errorf("bench: recovery diverged at vertex %d: recovered %v, fault-free %v",
				v, got.State(v).Parts(), want.State(v).Parts())
		}
	}

	r := rep.Recoveries[0]
	return &RecoveryReport{
		Algo:               "pr",
		Graph:              p.Name,
		Vertices:           g.NumVertices(),
		Edges:              g.NumEdges(),
		Workers:            recoveryWorkers,
		CheckpointEvery:    ccfg.CheckpointEvery,
		Kill:               kill,
		FaultFreeMS:        ms(cleanRep.Makespan),
		FaultedMS:          ms(rep.Makespan),
		DetectMS:           ms(r.Detect),
		MTTRMS:             ms(r.MTTR),
		Supersteps:         rep.Supersteps,
		ReplayedSupersteps: r.Replayed,
		RecoveryBytes:      r.RestoredBytes,
		Recoveries:         len(rep.Recoveries),
		Respawns:           respawns,
		Identical:          true,
	}, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// recoveryRun executes one full cluster run with real worker processes,
// optionally planting crashes, and returns the result with the
// coordinator's report and the fleet's respawn count.
func recoveryRun(ccfg cluster.Config, base string, crash map[int]string) (*core.Result, cluster.Report, int, error) {
	coord, err := cluster.New(ccfg)
	if err != nil {
		return nil, cluster.Report{}, 0, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, cluster.Report{}, 0, err
	}
	type outcome struct {
		res *core.Result
		err error
	}
	out := make(chan outcome, 1)
	go func() {
		res, err := coord.Serve(ln)
		out <- outcome{res, err}
	}()
	dirs := make([]string, ccfg.Workers)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("w%d", i))
	}
	fleet, err := chaos.StartFleet(chaos.FleetConfig{
		Addr:  ln.Addr().String(),
		Dirs:  dirs,
		Crash: crash,
	})
	if err != nil {
		return nil, cluster.Report{}, 0, err
	}
	var o outcome
	select {
	case o = <-out:
	case <-time.After(3 * time.Minute):
		fleet.Stop()
		return nil, cluster.Report{}, 0, fmt.Errorf("cluster run timed out")
	}
	if o.err != nil {
		fleet.Stop()
		return nil, cluster.Report{}, 0, o.err
	}
	if err := fleet.Wait(); err != nil {
		return nil, cluster.Report{}, 0, fmt.Errorf("fleet: %w", err)
	}
	return o.res, coord.Report(), fleet.Respawns(), nil
}

// RenderRecovery prints the recovery experiment summary.
func RenderRecovery(w io.Writer, rep *RecoveryReport) {
	fmt.Fprintf(w, "Recovery: SIGKILL worker %d at %s of superstep %d (%s on %q, %d vertices, %d workers, checkpoint every %d)\n",
		rep.Kill.Worker, rep.Kill.Phase, rep.Kill.Superstep,
		rep.Algo, rep.Graph, rep.Vertices, rep.Workers, rep.CheckpointEvery)
	fmt.Fprintf(w, "  fault-free makespan  %10.2f ms\n", rep.FaultFreeMS)
	fmt.Fprintf(w, "  faulted makespan     %10.2f ms\n", rep.FaultedMS)
	fmt.Fprintf(w, "  detection            %10.2f ms\n", rep.DetectMS)
	fmt.Fprintf(w, "  MTTR                 %10.2f ms\n", rep.MTTRMS)
	fmt.Fprintf(w, "  supersteps replayed  %10d (of %d executed)\n", rep.ReplayedSupersteps, rep.Supersteps)
	fmt.Fprintf(w, "  checkpoint restored  %10d B\n", rep.RecoveryBytes)
	fmt.Fprintf(w, "  result bit-identical %10v\n", rep.Identical)
}

// WriteRecoveryJSON writes the report as indented JSON (the
// BENCH_recovery.json artifact the cluster-smoke target records).
func WriteRecoveryJSON(path string, rep *RecoveryReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
