package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/live"
	"graphite/internal/stats"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

// --- stream: live-graph ingest throughput and incremental recomputation ---
//
// Two measurements on the live subsystem:
//
//  1. Ingest: events/sec through live.Apply with the WAL fsync on (the
//     acknowledged-durable path) and with NoSync (isolating the fsync tax),
//     plus the cost of replaying the whole log back into a graph on reopen.
//  2. Incremental recomputation: for each seedable algorithm, a query window
//     is answered cold, then re-answered seeded from a prior run covering a
//     prefix of the window (core.Options.SeedStates, the serve layer's
//     seed-cache path). The two must be bit-identical — the report fails
//     loudly if any vertex diverges — and the speedup is the point: the
//     seeded run re-scatters converged state in one superstep instead of
//     re-propagating it wave by wave.
//
// The generated event stream appends a chain of vertices, one time unit and
// one weighted edge per vertex. The chain is the adversarial shape for cold
// recomputation — supersteps scale with the diameter, so the window prefix
// the seed already converged is exactly the work the incremental run skips.

// streamRuns is how many measured runs back each timing; medians are
// reported.
const streamRuns = 3

// streamSeedFrac places the seed run's window cut at this fraction of the
// chain.
const streamSeedFrac = 0.75

// StreamAlgos are the measured seedable algorithms. FAST is also seedable
// (algorithms.SupportsIncremental pins its bit-identity) but is excluded
// here: on the chain its states are partition-dense — the journey-start
// value changes at every time unit, one partition each — so the seeded
// superstep-1 re-scatter replays O(V·H) partitions and costs more than the
// supersteps it saves. Seeding is a correctness-preserving hint, not a
// guaranteed win; these rows are the shapes where it pays.
var StreamAlgos = []Algo{EAT, RH}

// streamBatch returns the ingest batch appending vertices [lo, hi) to the
// chain, vertex v at time v with a travel-time-1 edge from its predecessor.
func streamBatch(lo, hi int) []stream.Event {
	var evs []stream.Event
	for v := lo; v < hi; v++ {
		t := ival.Time(v)
		evs = append(evs, stream.Event{Op: stream.AddVertex, T: t, V: tgraph.VertexID(v)})
		if v > 0 {
			e := tgraph.EdgeID(v)
			evs = append(evs,
				stream.Event{Op: stream.AddEdge, T: t, E: e, Src: tgraph.VertexID(v - 1), Dst: tgraph.VertexID(v)},
				stream.Event{Op: stream.SetEdgeProp, T: t, E: e, Label: tgraph.PropTravelTime, Value: 1},
				stream.Event{Op: stream.SetEdgeProp, T: t, E: e, Label: tgraph.PropTravelCost, Value: 1})
		}
	}
	return evs
}

// StreamRow is one seedable algorithm's incremental-vs-cold cell.
type StreamRow struct {
	Algo Algo `json:"algo"`
	// SeedWindow is the prefix window whose terminal states seed the
	// incremental run; Window is the full query window both runs answer.
	SeedWindow string `json:"seed_window"`
	Window     string `json:"window"`
	// FullMS and IncrementalMS are median wall times of the cold and seeded
	// runs over the same graph; Speedup is their ratio.
	FullMS        float64 `json:"full_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
	Speedup       float64 `json:"speedup"`
	// Superstep counts expose the mechanism: the seeded run needs roughly
	// the extension's diameter, the cold run the whole window's.
	FullSupersteps        int `json:"full_supersteps"`
	IncrementalSupersteps int `json:"incremental_supersteps"`
	// Identical records the bit-identity check (the run errors if false).
	Identical bool `json:"identical"`
}

// StreamReport is the live-graph experiment: ingest throughput plus one
// incremental row per seedable algorithm.
type StreamReport struct {
	Graph    string `json:"graph"`
	Batches  int    `json:"batches"`
	Events   int    `json:"events"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Workers  int    `json:"workers"`
	Runs     int    `json:"runs_per_cell"`
	WALBytes int64  `json:"wal_bytes"`
	// IngestEventsPerSec is the durable path (fsync per batch);
	// NoSyncEventsPerSec drops the fsync, isolating its tax.
	IngestEventsPerSec float64 `json:"ingest_events_per_sec"`
	NoSyncEventsPerSec float64 `json:"nosync_events_per_sec"`
	// ReplayMS is the wall time of reopening the WAL — replaying every batch
	// back into the acknowledged graph.
	ReplayMS           float64     `json:"replay_ms"`
	ReplayEventsPerSec float64     `json:"replay_events_per_sec"`
	Rows               []StreamRow `json:"rows"`
}

// Stream runs the live-graph experiment: ingest the chain through the WAL,
// replay it, then answer each seedable algorithm cold and seeded.
func Stream(cfg Config) (*StreamReport, error) {
	vertices := int(1200 * float64(cfg.Scale))
	if vertices < 60 {
		vertices = 60
	}
	const perBatch = 30
	batches := (vertices + perBatch - 1) / perBatch
	vertices = batches * perBatch

	dir, err := os.MkdirTemp("", "graphite-stream-*")
	if err != nil {
		return nil, fmt.Errorf("bench: stream scratch dir: %w", err)
	}
	defer os.RemoveAll(dir)

	rep := &StreamReport{
		Graph:   fmt.Sprintf("chain-%d", vertices),
		Batches: batches,
		Workers: cfg.Workers,
		Runs:    streamRuns,
	}

	// Ingest, durable path: every Apply fsyncs the WAL before the new epoch
	// becomes visible — the cost a client's acknowledgment includes. The
	// horizon closes still-open chain entities at the end of the stream so
	// the queried lifespan is finite.
	horizon := ival.Time(vertices)
	walPath := filepath.Join(dir, "stream.wal")
	lg, err := live.Open(walPath, live.Options{Name: "stream", Horizon: horizon})
	if err != nil {
		return nil, fmt.Errorf("bench: stream open: %w", err)
	}
	start := time.Now()
	for i := 0; i < batches; i++ {
		if _, err := lg.Apply(streamBatch(i*perBatch, (i+1)*perBatch)); err != nil {
			lg.Close()
			return nil, fmt.Errorf("bench: stream ingest batch %d: %w", i, err)
		}
	}
	syncWall := time.Since(start)
	info := lg.Info()
	rep.Events = info.Events
	rep.IngestEventsPerSec = float64(info.Events) / max(syncWall.Seconds(), 1e-9)
	if err := lg.Close(); err != nil {
		return nil, fmt.Errorf("bench: stream close: %w", err)
	}
	if st, err := os.Stat(walPath); err == nil {
		rep.WALBytes = st.Size()
	}

	// Replay: reopen the same WAL and take the recovered epoch as the query
	// graph — the bench measures exactly what a crash recovery pays.
	start = time.Now()
	lg, err = live.Open(walPath, live.Options{Name: "stream", Horizon: horizon})
	if err != nil {
		return nil, fmt.Errorf("bench: stream replay: %w", err)
	}
	replayWall := time.Since(start)
	rep.ReplayMS = float64(replayWall.Microseconds()) / 1e3
	rep.ReplayEventsPerSec = float64(info.Events) / max(replayWall.Seconds(), 1e-9)
	ep := lg.Acquire()
	defer ep.Release()
	defer lg.Close()
	g := ep.Graph()
	rep.Vertices = g.NumVertices()
	rep.Edges = g.NumEdges()

	// NoSync ingest on a second WAL isolates the fsync tax.
	ns, err := live.Open(filepath.Join(dir, "nosync.wal"), live.Options{Name: "stream-nosync", NoSync: true})
	if err != nil {
		return nil, fmt.Errorf("bench: stream nosync open: %w", err)
	}
	start = time.Now()
	for i := 0; i < batches; i++ {
		if _, err := ns.Apply(streamBatch(i*perBatch, (i+1)*perBatch)); err != nil {
			ns.Close()
			return nil, fmt.Errorf("bench: stream nosync batch %d: %w", i, err)
		}
	}
	rep.NoSyncEventsPerSec = float64(info.Events) / max(time.Since(start).Seconds(), 1e-9)
	ns.Close()

	// Incremental vs cold over the recovered graph.
	life := g.Lifespan()
	seedEnd := life.Start + ival.Time(float64(life.End-life.Start)*streamSeedFrac)
	seedWin := ival.New(life.Start, seedEnd)
	for _, al := range StreamAlgos {
		row, err := streamCell(cfg, g, al, seedWin)
		if err != nil {
			return nil, fmt.Errorf("bench: stream %s: %w", al, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// streamCell answers one seedable algorithm over the full graph cold and
// seeded from a prefix-window run, verifying bit-identity.
func streamCell(cfg Config, g *tgraph.Graph, al Algo, seedWin ival.Interval) (StreamRow, error) {
	name := strings.ToLower(string(al))
	run := func(target *tgraph.Graph, seed *core.Result) (*core.Result, error) {
		prog, opts, err := algorithms.New(target, name, algorithms.Params{
			Source: target.VertexAt(0).ID,
		})
		if err != nil {
			return nil, err
		}
		opts.NumWorkers = cfg.Workers
		if seed != nil {
			opts.SeedStates = core.SeedFromResult(target, seed)
		}
		return core.Run(target, prog, opts)
	}

	// The seed run mirrors the serve layer: slice the graph to the prefix
	// window, run cold, keep the terminal states.
	gSeed, err := tgraph.Slice(g, seedWin)
	if err != nil {
		return StreamRow{}, fmt.Errorf("slice %s: %w", seedWin, err)
	}
	seedRes, err := run(gSeed, nil)
	if err != nil {
		return StreamRow{}, fmt.Errorf("seed run: %w", err)
	}

	measure := func(seed *core.Result) (*core.Result, float64, error) {
		if _, err := run(g, seed); err != nil { // warm-up
			return nil, 0, err
		}
		var last *core.Result
		walls := make([]time.Duration, 0, streamRuns)
		for i := 0; i < streamRuns; i++ {
			start := time.Now()
			r, err := run(g, seed)
			if err != nil {
				return nil, 0, err
			}
			walls = append(walls, time.Since(start))
			last = r
		}
		sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
		return last, float64(walls[len(walls)/2].Microseconds()) / 1e3, nil
	}
	full, fullMS, err := measure(nil)
	if err != nil {
		return StreamRow{}, fmt.Errorf("cold run: %w", err)
	}
	incr, incrMS, err := measure(seedRes)
	if err != nil {
		return StreamRow{}, fmt.Errorf("seeded run: %w", err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !reflect.DeepEqual(full.State(v).Parts(), incr.State(v).Parts()) {
			return StreamRow{}, fmt.Errorf("vertex %d diverges between cold and seeded runs", v)
		}
	}
	row := StreamRow{
		Algo:                  al,
		SeedWindow:            seedWin.String(),
		Window:                g.Lifespan().String(),
		FullMS:                fullMS,
		IncrementalMS:         incrMS,
		FullSupersteps:        full.Metrics.Supersteps,
		IncrementalSupersteps: incr.Metrics.Supersteps,
		Identical:             true,
	}
	if incrMS > 0 {
		row.Speedup = fullMS / incrMS
	}
	return row, nil
}

// RenderStream prints the live-graph experiment tables.
func RenderStream(w io.Writer, rep *StreamReport) {
	fmt.Fprintf(w, "Stream: live graph %q — %d events in %d batches (%d vertices, %d edges, %d workers)\n",
		rep.Graph, rep.Events, rep.Batches, rep.Vertices, rep.Edges, rep.Workers)
	fmt.Fprintf(w, "ingest %.0f events/s durable (fsync per batch), %.0f events/s nosync; WAL %d bytes; replay %.2f ms (%.0f events/s)\n",
		rep.IngestEventsPerSec, rep.NoSyncEventsPerSec, rep.WALBytes, rep.ReplayMS, rep.ReplayEventsPerSec)
	fmt.Fprintf(w, "incremental recomputation, median of %d runs (seeded from the %s prefix, bit-identity enforced):\n",
		rep.Runs, rep.Rows[0].SeedWindow)
	t := stats.Table{Header: []string{
		"Algo", "Window", "Cold ms", "Seeded ms", "Speedup", "Cold steps", "Seeded steps",
	}}
	for _, r := range rep.Rows {
		t.Add(string(r.Algo), r.Window,
			fmt.Sprintf("%.2f", r.FullMS),
			fmt.Sprintf("%.2f", r.IncrementalMS),
			fmt.Sprintf("%.2fx", r.Speedup),
			r.FullSupersteps, r.IncrementalSupersteps)
	}
	t.Render(w)
}

// WriteStreamJSON writes the report as indented JSON (the BENCH_stream.json
// artifact the Makefile target records).
func WriteStreamJSON(path string, rep *StreamReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
