// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sec. VII) over the synthetic dataset
// profiles: Table 1 (dataset characteristics), Table 2 (speedup ratios),
// Fig. 4 (count/time correlation), Fig. 5 (per-algorithm makespans and
// counts), Fig. 6 (memory footprints, warp-combiner and warp-suppression
// ablations), Fig. 7 (weak scaling), plus the message-encoding and
// lines-of-code measurements of Sec. VI and VII-B8.
package bench

import (
	"fmt"
	"strings"

	"graphite/internal/algorithms"
	"graphite/internal/baseline/chlonos"
	"graphite/internal/baseline/goffish"
	"graphite/internal/baseline/msb"
	"graphite/internal/baseline/tgb"
	"graphite/internal/baseline/valgo"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/gen"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

// Platform names the five execution platforms of the evaluation.
type Platform string

// Platforms.
const (
	ICM Platform = "GRAPHITE" // interval-centric model (this paper)
	MSB Platform = "MSB"      // multi-snapshot baseline
	CHL Platform = "Chlonos"  // Chronos clone
	TGB Platform = "TGB"      // transformed graph baseline
	GOF Platform = "GoFFish"  // GoFFish-TS
)

// Algo names the twelve algorithms.
type Algo string

// Algorithms, TI then TD, in the paper's order.
const (
	BFS  Algo = "BFS"
	WCC  Algo = "WCC"
	SCC  Algo = "SCC"
	PR   Algo = "PR"
	SSSP Algo = "SSSP"
	EAT  Algo = "EAT"
	FAST Algo = "FAST"
	LD   Algo = "LD"
	TMST Algo = "TMST"
	RH   Algo = "RH"
	LCC  Algo = "LCC"
	TC   Algo = "TC"
)

// TIAlgos are the time-independent algorithms (run on ICM, MSB, Chlonos).
var TIAlgos = []Algo{BFS, WCC, SCC, PR}

// TDAlgos are the time-dependent algorithms (run on ICM, TGB, GoFFish).
var TDAlgos = []Algo{SSSP, EAT, FAST, LD, TMST, RH, LCC, TC}

// IsTD reports whether the algorithm is time-dependent.
func IsTD(a Algo) bool {
	for _, x := range TDAlgos {
		if x == a {
			return true
		}
	}
	return false
}

// Config parameterizes the harness.
type Config struct {
	// Scale multiplies the dataset profile sizes.
	Scale gen.Scale
	// Workers is the BSP worker count (the paper uses 8 nodes).
	Workers int
	// BatchSize is Chlonos's snapshots-per-batch (memory limit model).
	BatchSize int
	// PRIterations is the fixed PageRank superstep budget.
	PRIterations int
	// Seed drives the dataset generators.
	Seed int64
	// Tracer and Registry, when set, are threaded into every ICM run (the
	// baselines keep their own engine-internal metrics): the tracer receives
	// the per-superstep event stream, the registry the run counters.
	Tracer   obs.Tracer
	Registry *obs.Registry
}

// DefaultConfig mirrors the paper's setup at laptop scale.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Workers: 8, BatchSize: 6, PRIterations: 10, Seed: 42}
}

// Dataset is one generated graph plus its profile.
type Dataset struct {
	Profile gen.Profile
	Graph   *tgraph.Graph
}

// Datasets generates the six Table 1 profiles at the configured scale.
func Datasets(cfg Config) ([]Dataset, error) {
	var out []Dataset
	for _, p := range gen.AllProfiles(cfg.Scale) {
		g, err := gen.Generate(p, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: generate %s: %w", p.Name, err)
		}
		out = append(out, Dataset{Profile: p, Graph: g})
	}
	return out, nil
}

// Run executes one (platform, algorithm) pair over a graph and returns the
// run metrics. The source is the first vertex; LD targets the last vertex.
func Run(cfg Config, pl Platform, al Algo, g *tgraph.Graph) (*engine.Metrics, error) {
	source := g.VertexAt(0).ID
	target := g.VertexAt(g.NumVertices() - 1).ID
	w := cfg.Workers
	switch pl {
	case ICM:
		r, err := runICM(cfg, al, g, source, target, w)
		if err != nil {
			return nil, err
		}
		return r.Metrics, nil
	case MSB:
		spec, err := tiSpec(cfg, al, source)
		if err != nil {
			return nil, err
		}
		r, err := msb.Run(g, spec, w)
		if err != nil {
			return nil, err
		}
		return &r.Metrics, nil
	case CHL:
		spec, err := tiSpec(cfg, al, source)
		if err != nil {
			return nil, err
		}
		r, err := chlonos.Run(g, spec, cfg.BatchSize, w)
		if err != nil {
			return nil, err
		}
		return &r.Metrics, nil
	case TGB:
		return runTGB(al, g, source, target, w)
	case GOF:
		return runGOF(al, g, source, target, w)
	}
	return nil, fmt.Errorf("bench: unknown platform %q", pl)
}

func runICM(cfg Config, al Algo, g *tgraph.Graph, source, target tgraph.VertexID, w int) (*core.Result, error) {
	prog, opts, err := algorithms.New(g, strings.ToLower(string(al)), algorithms.Params{
		Source:     source,
		Target:     target,
		Iterations: cfg.PRIterations,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	opts.NumWorkers = w
	opts.Tracer = cfg.Tracer
	opts.Registry = cfg.Registry
	return core.Run(g, prog, opts)
}

func tiSpec(cfg Config, al Algo, source tgraph.VertexID) (valgo.Spec, error) {
	switch al {
	case BFS:
		return valgo.BFSSpec(int64(source)), nil
	case WCC:
		return valgo.WCCSpec(), nil
	case SCC:
		return valgo.SCCSpec(), nil
	case PR:
		return valgo.PageRankSpec(cfg.PRIterations), nil
	}
	return valgo.Spec{}, fmt.Errorf("bench: %q is not a TI algorithm", al)
}

func runTGB(al Algo, g *tgraph.Graph, source, target tgraph.VertexID, w int) (*engine.Metrics, error) {
	switch al {
	case SSSP:
		r, err := tgb.RunSSSP(g, source, 0, w)
		return pathMetrics(r, err)
	case EAT:
		r, err := tgb.RunEAT(g, source, 0, w)
		return pathMetrics(r, err)
	case FAST:
		r, err := tgb.RunFAST(g, source, 0, w)
		return pathMetrics(r, err)
	case LD:
		r, err := tgb.RunLD(g, target, g.Horizon(), w)
		return pathMetrics(r, err)
	case TMST:
		r, err := tgb.RunTMST(g, source, 0, w)
		return pathMetrics(r, err)
	case RH:
		r, err := tgb.RunRH(g, source, 0, w)
		return pathMetrics(r, err)
	case LCC:
		r, err := tgb.RunLCC(g, w)
		if err != nil {
			return nil, err
		}
		return r.Metrics, nil
	case TC:
		r, err := tgb.RunTC(g, w)
		if err != nil {
			return nil, err
		}
		return r.Metrics, nil
	}
	return nil, fmt.Errorf("bench: %q is not a TD algorithm", al)
}

func pathMetrics(r *tgb.PathResult, err error) (*engine.Metrics, error) {
	if err != nil {
		return nil, err
	}
	return r.Metrics, nil
}

func runGOF(al Algo, g *tgraph.Graph, source, target tgraph.VertexID, w int) (*engine.Metrics, error) {
	switch al {
	case SSSP:
		r, err := goffish.RunForward(g, goffish.NewSSSP(source, 0), w)
		return gofMetrics(r, err)
	case EAT:
		r, err := goffish.RunForward(g, goffish.NewEAT(source, 0), w)
		return gofMetrics(r, err)
	case FAST:
		r, err := goffish.RunForward(g, goffish.NewFAST(source, 0), w)
		return gofMetrics(r, err)
	case LD:
		r, err := goffish.RunLD(g, target, g.Horizon(), w)
		return gofMetrics(r, err)
	case TMST:
		r, err := goffish.RunForward(g, goffish.NewTMST(source, 0), w)
		return gofMetrics(r, err)
	case RH:
		r, err := goffish.RunForward(g, goffish.NewRH(source, 0), w)
		return gofMetrics(r, err)
	case LCC:
		r, err := goffish.RunLCC(g, w)
		if err != nil {
			return nil, err
		}
		return &r.Metrics, nil
	case TC:
		r, err := goffish.RunTC(g, w)
		if err != nil {
			return nil, err
		}
		return &r.Metrics, nil
	}
	return nil, fmt.Errorf("bench: %q is not a TD algorithm", al)
}

func gofMetrics(r *goffish.Result, err error) (*engine.Metrics, error) {
	if err != nil {
		return nil, err
	}
	return &r.Metrics, nil
}

// PlatformsFor returns the platforms that can run an algorithm, ICM first.
func PlatformsFor(al Algo) []Platform {
	if IsTD(al) {
		return []Platform{ICM, TGB, GOF}
	}
	return []Platform{ICM, MSB, CHL}
}
