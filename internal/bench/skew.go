package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/gen"
	"graphite/internal/obs"
	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

// --- skew: scheduler ablation on a skewed power-law temporal graph ---
//
// The experiment isolates compute skew, the straggler problem the
// skew-aware scheduler exists for. The generator's power law concentrates
// edge work on low-index hub vertices, and the static baseline partitions
// by contiguous vertex ranges — the locality-preserving assignment a real
// ingest produces, and the worst case for skew: one worker owns every hub
// and every superstep barrier waits on it. Four modes decompose the remedy:
//
//	static          range partition, static schedule (the pre-scheduler loop)
//	balanced        PartitionBalanced over Σ(out-degree·lifespan) weights
//	steal           range partition + chunked work stealing
//	balanced+steal  both
//
// Every mode must produce bit-identical vertex states for the same
// partition (stealing only re-times execution, never reorders effects);
// the report fails loudly if they diverge.
//
// Stealing runs at chunk granularity 1 here: under a range partition the
// hubs are adjacent in slot order, so any larger chunk welds the heaviest
// vertices into one indivisible steal unit and the balance floor rises to
// that chunk's share of the work. Chunk 1 is also the adversarial
// determinism configuration — maximal steal traffic and lane merging.

// SkewMode names one scheduler configuration of the skew experiment.
type SkewMode string

// Skew experiment modes.
const (
	SkewStatic        SkewMode = "static"
	SkewBalanced      SkewMode = "balanced"
	SkewSteal         SkewMode = "steal"
	SkewBalancedSteal SkewMode = "balanced+steal"
)

// SkewModes lists the four modes in report order.
var SkewModes = []SkewMode{SkewStatic, SkewBalanced, SkewSteal, SkewBalancedSteal}

// SkewAlgos are the algorithms of the skew ablation: PageRank exercises the
// all-active dense load, SSSP and EAT the shifting sparse frontier.
var SkewAlgos = []Algo{PR, SSSP, EAT}

// skewRuns is how many measured runs back each cell; the makespan reported
// is their median, the imbalance statistics pool every superstep of every
// run.
const skewRuns = 3

// skewChunk is the steal granularity of the experiment (see the package
// comment above: hubs are slot-adjacent under a range partition).
const skewChunk = 1

// rangePartition assigns contiguous vertex-index blocks to workers — the
// skewed static baseline the scheduler is measured against.
func rangePartition(vertices int) func(vertex, numWorkers int) int {
	return func(v, n int) int {
		if n <= 0 || v < 0 || v >= vertices {
			return 0
		}
		per := (vertices + n - 1) / n
		return v / per
	}
}

// SkewRow is one (algorithm, mode) cell of the skew report.
type SkewRow struct {
	Algo       Algo     `json:"algo"`
	Mode       SkewMode `json:"mode"`
	Supersteps int      `json:"supersteps"`
	// MakespanMS is the median run wall time.
	MakespanMS float64 `json:"makespan_ms"`
	// SkewMax and SkewMean summarize per-superstep compute imbalance
	// (max worker compute time / mean worker compute time; 1.0 is perfectly
	// balanced, Workers is one straggler doing everything): the worst
	// superstep and the mean across all supersteps of all measured runs.
	SkewMax  float64 `json:"skew_max"`
	SkewMean float64 `json:"skew_mean"`
	// WorkSkewMax and WorkSkew are the same ratios over executed work units
	// (messages emitted per worker per superstep) instead of nanoseconds:
	// deterministic under a static schedule and immune to CPU
	// oversubscription noise. WorkSkew is work-weighted across supersteps:
	// Σ max / (Σ total / workers), i.e. the modeled parallel slowdown of
	// the compute barriers.
	WorkSkewMax float64 `json:"work_skew_max"`
	WorkSkew    float64 `json:"work_skew"`
	// Steals is the mean number of stolen chunks per run (zero unless the
	// mode steals; the exact count is timing-dependent, unlike the results).
	Steals int64 `json:"steals,omitempty"`
	// StealWaitMS is the mean per-run total of worker idle-wait inside the
	// stealing compute phase.
	StealWaitMS  float64 `json:"steal_wait_ms,omitempty"`
	Messages     int64   `json:"messages"`
	MessageBytes int64   `json:"message_bytes"`
}

// SkewReport is the full skew experiment: the generated graph's shape plus
// one row per (algorithm, mode).
type SkewReport struct {
	Graph      string    `json:"graph"`
	Vertices   int       `json:"vertices"`
	Edges      int       `json:"edges"`
	Workers    int       `json:"workers"`
	StealChunk int       `json:"steal_chunk"`
	Runs       int       `json:"runs_per_cell"`
	Rows       []SkewRow `json:"rows"`
}

// Skew runs the scheduler ablation and verifies the determinism contract
// across modes before returning the report.
func Skew(cfg Config) (*SkewReport, error) {
	p := gen.SkewedLike(cfg.Scale)
	g, err := gen.Generate(p, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", p.Name, err)
	}
	balanced := engine.PartitionBalanced(g.WorkWeights())

	rep := &SkewReport{
		Graph:      p.Name,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Workers:    cfg.Workers,
		StealChunk: skewChunk,
		Runs:       skewRuns,
	}
	for _, al := range SkewAlgos {
		results := map[SkewMode]*core.Result{}
		for _, mode := range SkewModes {
			row, r, err := skewCell(cfg, al, g, mode, balanced)
			if err != nil {
				return nil, fmt.Errorf("bench: skew %s/%s: %w", al, mode, err)
			}
			results[mode] = r
			rep.Rows = append(rep.Rows, row)
		}
		if err := skewIdentity(g, al, results); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// skewIdentity enforces the determinism contract: stealing must be
// bit-identical to the static schedule on the same partition for every
// algorithm; the balanced partition must also agree for the min-fold
// algorithms (PageRank folds float rank mass in message arrival order, and
// repartitioning legitimately reorders arrival across workers, so it is
// excluded from the cross-partition comparison only).
func skewIdentity(g *tgraph.Graph, al Algo, res map[SkewMode]*core.Result) error {
	pairs := [][2]SkewMode{
		{SkewStatic, SkewSteal},
		{SkewBalanced, SkewBalancedSteal},
	}
	if al != PR {
		pairs = append(pairs, [2]SkewMode{SkewStatic, SkewBalanced})
	}
	for _, pr := range pairs {
		a, b := res[pr[0]], res[pr[1]]
		for v := 0; v < g.NumVertices(); v++ {
			if !reflect.DeepEqual(a.State(v).Parts(), b.State(v).Parts()) {
				return fmt.Errorf("bench: skew %s: vertex %d diverges between %s and %s",
					al, v, pr[0], pr[1])
			}
		}
	}
	return nil
}

// skewCell measures one (algorithm, mode) cell: a warm-up run to let pools
// and grow-only buffers reach steady state, then skewRuns traced runs.
func skewCell(cfg Config, al Algo, g *tgraph.Graph, mode SkewMode, balanced func(vertex, numWorkers int) int) (SkewRow, *core.Result, error) {
	run := func(tr obs.Tracer, reg *obs.Registry) (*core.Result, error) {
		prog, opts, err := algorithms.New(g, strings.ToLower(string(al)), algorithms.Params{
			Source:     g.VertexAt(0).ID,
			Target:     g.VertexAt(g.NumVertices() - 1).ID,
			Iterations: cfg.PRIterations,
		})
		if err != nil {
			return nil, err
		}
		opts.NumWorkers = cfg.Workers
		opts.Tracer = tr
		opts.Registry = reg
		switch mode {
		case SkewStatic:
			opts.Partitioner = rangePartition(g.NumVertices())
		case SkewBalanced:
			opts.Partitioner = balanced
		case SkewSteal:
			opts.Partitioner = rangePartition(g.NumVertices())
			opts.Steal = true
			opts.StealChunk = skewChunk
		case SkewBalancedSteal:
			opts.Partitioner = balanced
			opts.Steal = true
			opts.StealChunk = skewChunk
		}
		return core.Run(g, prog, opts)
	}

	if _, err := run(nil, nil); err != nil { // warm-up
		return SkewRow{}, nil, err
	}
	var (
		last       *core.Result
		makespans  []time.Duration
		ratios     []float64
		workRatios []float64
		maxWork    int64 // Σ per-superstep max worker work, all runs
		totalWork  int64 // Σ per-superstep total work, all runs
		workers    int
		steals     int64
		stealNS    int64
	)
	for i := 0; i < skewRuns; i++ {
		rec := &obs.Recorder{}
		reg := obs.NewRegistry()
		r, err := run(rec, reg)
		if err != nil {
			return SkewRow{}, nil, err
		}
		last = r
		makespans = append(makespans, r.Metrics.Makespan)
		evs := rec.Events()
		for _, e := range evs {
			wp, ok := e.(obs.WorkerPhase)
			if !ok || wp.Phase != "compute" {
				continue
			}
			stealNS += wp.StealNS
			if wp.Worker >= workers {
				workers = wp.Worker + 1
			}
		}
		ratios = append(ratios, skewPerStep(evs, func(wp obs.WorkerPhase) int64 { return wp.NS })...)
		work := skewPerStep(evs, func(wp obs.WorkerPhase) int64 { return wp.SentMsgs })
		workRatios = append(workRatios, work...)
		mw, tw := workTotals(evs)
		maxWork += mw
		totalWork += tw
		steals += reg.Counter(obs.CSteals).Load()
	}
	sort.Slice(makespans, func(a, b int) bool { return makespans[a] < makespans[b] })

	row := SkewRow{
		Algo:         al,
		Mode:         mode,
		Supersteps:   last.Metrics.Supersteps,
		MakespanMS:   float64(makespans[len(makespans)/2].Microseconds()) / 1e3,
		Steals:       steals / skewRuns,
		StealWaitMS:  float64(stealNS) / float64(skewRuns) / 1e6,
		Messages:     last.Metrics.Messages,
		MessageBytes: last.Metrics.MessageBytes,
	}
	row.SkewMax, row.SkewMean = foldRatios(ratios)
	row.WorkSkewMax, _ = foldRatios(workRatios)
	if totalWork > 0 && workers > 0 {
		row.WorkSkew = float64(maxWork) * float64(workers) / float64(totalWork)
	}
	return row, last, nil
}

// skewPerStep folds a run's worker_phase compute events into one max/mean
// ratio per superstep of the given per-worker measure, skipping supersteps
// where the measure sums to zero.
func skewPerStep(evs []obs.Event, measure func(obs.WorkerPhase) int64) []float64 {
	per := map[int][]int64{}
	for _, e := range evs {
		wp, ok := e.(obs.WorkerPhase)
		if !ok || wp.Phase != "compute" {
			continue
		}
		per[wp.Superstep] = append(per[wp.Superstep], measure(wp))
	}
	var out []float64
	for _, vals := range per {
		var sum, max int64
		for _, v := range vals {
			sum += v
			if v > max {
				max = v
			}
		}
		if sum <= 0 {
			continue
		}
		out = append(out, float64(max)*float64(len(vals))/float64(sum))
	}
	return out
}

// workTotals sums, over a run's supersteps, the max single-worker work and
// the total work (messages emitted during compute). Their ratio against the
// worker count is the work-weighted barrier skew.
func workTotals(evs []obs.Event) (maxWork, totalWork int64) {
	per := map[int][]int64{}
	for _, e := range evs {
		wp, ok := e.(obs.WorkerPhase)
		if !ok || wp.Phase != "compute" {
			continue
		}
		per[wp.Superstep] = append(per[wp.Superstep], wp.SentMsgs)
	}
	for _, vals := range per {
		var max int64
		for _, v := range vals {
			totalWork += v
			if v > max {
				max = v
			}
		}
		maxWork += max
	}
	return maxWork, totalWork
}

// foldRatios reduces per-superstep ratios to their max and mean.
func foldRatios(rs []float64) (max, mean float64) {
	for _, r := range rs {
		if r > max {
			max = r
		}
		mean += r
	}
	if len(rs) > 0 {
		mean /= float64(len(rs))
	}
	return max, mean
}

// RenderSkew prints the skew ablation table.
func RenderSkew(w io.Writer, rep *SkewReport) {
	fmt.Fprintf(w, "Skew: scheduler ablation on %q (%d vertices, %d edges, %d workers, chunk %d, median of %d runs)\n",
		rep.Graph, rep.Vertices, rep.Edges, rep.Workers, rep.StealChunk, rep.Runs)
	fmt.Fprintln(w, "skew = per-superstep max/mean worker compute time (1.00 is balanced)")
	t := stats.Table{Header: []string{
		"Algo", "Mode", "Supersteps", "Makespan ms", "Skew max", "Skew mean", "Work skew", "Work max", "Steals", "Steal-wait ms", "Messages",
	}}
	for _, r := range rep.Rows {
		t.Add(string(r.Algo), string(r.Mode), r.Supersteps,
			fmt.Sprintf("%.2f", r.MakespanMS),
			fmt.Sprintf("%.2f", r.SkewMax),
			fmt.Sprintf("%.2f", r.SkewMean),
			fmt.Sprintf("%.2f", r.WorkSkew),
			fmt.Sprintf("%.2f", r.WorkSkewMax),
			r.Steals,
			fmt.Sprintf("%.2f", r.StealWaitMS),
			r.Messages)
	}
	t.Render(w)
}

// WriteSkewJSON writes the report as indented JSON (the BENCH_skew.json
// artifact the Makefile target records).
func WriteSkewJSON(path string, rep *SkewReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
