package bench

import (
	"fmt"
	"io"
	"time"

	"graphite/internal/engine"
	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

// --- Table 1: dataset characteristics ---

// Table1Row is one dataset's characteristics.
type Table1Row struct {
	Name string
	C    tgraph.Characteristics
}

// Table1 computes the dataset characteristics table.
func Table1(cfg Config) ([]Table1Row, error) {
	ds, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, d := range ds {
		rows = append(rows, Table1Row{Name: d.Profile.Name, C: d.Graph.ComputeCharacteristics()})
	}
	return rows, nil
}

// RenderTable1 prints the characteristics in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	t := stats.Table{Header: []string{
		"Graph", "#Snaps", "Int|V|", "Int|E|", "Snap|V|", "Snap|E|",
		"Trans|V|", "Trans|E|", "Multi|V|", "Multi|E|", "LifeV", "LifeE", "LifeProp",
	}}
	for _, r := range rows {
		c := r.C
		t.Add(r.Name, c.Snapshots, c.IntervalV, c.IntervalE, c.LargestSnapV, c.LargestSnapE,
			c.TransformedV, c.TransformedE, c.MultiSnapV, c.MultiSnapE,
			c.AvgVertexLife, c.AvgEdgeLife, c.AvgPropLife)
	}
	fmt.Fprintln(w, "Table 1: dataset characteristics (synthetic profiles shaped like the paper's graphs)")
	t.Render(w)
}

// --- Cell: one (platform, algorithm, graph) measurement ---

// Cell is one measured run.
type Cell struct {
	Graph    string
	Platform Platform
	Algo     Algo
	M        engine.Metrics
}

// RunMatrix measures every runnable (platform, algorithm) pair on every
// dataset. It is the shared data source for Table 2, Fig. 4 and Fig. 5.
func RunMatrix(cfg Config, algos []Algo) ([]Cell, error) {
	ds, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, d := range ds {
		for _, al := range algos {
			for _, pl := range PlatformsFor(al) {
				m, err := Run(cfg, pl, al, d.Graph)
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s/%s: %w", d.Profile.Name, pl, al, err)
				}
				cells = append(cells, Cell{Graph: d.Profile.Name, Platform: pl, Algo: al, M: *m})
			}
		}
	}
	return cells, nil
}

// --- Table 2: speedup ratios over GRAPHITE ---

// Table2Row is the ratio of one baseline's makespan over GRAPHITE's,
// averaged over the TI or TD algorithms, for one graph.
type Table2Row struct {
	Graph    string
	Platform Platform
	Kind     string // "TI" or "TD"
	Ratio    float64
}

// Table2 derives the speedup table from a measurement matrix.
func Table2(cells []Cell) []Table2Row {
	// Index makespans.
	mk := map[string]map[Platform]map[Algo]time.Duration{}
	for _, c := range cells {
		if mk[c.Graph] == nil {
			mk[c.Graph] = map[Platform]map[Algo]time.Duration{}
		}
		if mk[c.Graph][c.Platform] == nil {
			mk[c.Graph][c.Platform] = map[Algo]time.Duration{}
		}
		mk[c.Graph][c.Platform][c.Algo] = c.M.Makespan
	}
	var rows []Table2Row
	graphs := orderedGraphs(cells)
	for _, g := range graphs {
		for _, pl := range []Platform{MSB, CHL, TGB, GOF} {
			kind, pool := "TI", TIAlgos
			if pl == TGB || pl == GOF {
				kind, pool = "TD", TDAlgos
			}
			var ratios []float64
			for _, al := range pool {
				base, ok1 := mk[g][pl][al]
				icm, ok2 := mk[g][ICM][al]
				if ok1 && ok2 && icm > 0 {
					ratios = append(ratios, float64(base)/float64(icm))
				}
			}
			if len(ratios) > 0 {
				rows = append(rows, Table2Row{Graph: g, Platform: pl, Kind: kind, Ratio: stats.Mean(ratios)})
			}
		}
	}
	return rows
}

// RenderTable2 prints the ratio matrix (graphs as columns).
func RenderTable2(w io.Writer, rows []Table2Row) {
	graphs := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Graph] {
			seen[r.Graph] = true
			graphs = append(graphs, r.Graph)
		}
	}
	t := stats.Table{Header: append([]string{"Kind", "Platform"}, graphs...)}
	for _, pl := range []Platform{MSB, CHL, TGB, GOF} {
		kind := "TI"
		if pl == TGB || pl == GOF {
			kind = "TD"
		}
		cells := []any{kind, string(pl)}
		for _, g := range graphs {
			val := "-"
			for _, r := range rows {
				if r.Graph == g && r.Platform == pl {
					val = fmt.Sprintf("%.2fx", r.Ratio)
				}
			}
			cells = append(cells, val)
		}
		t.Add(cells...)
	}
	fmt.Fprintln(w, "Table 2: baseline makespan / GRAPHITE makespan (avg over TI or TD algorithms; >1x = GRAPHITE faster)")
	t.Render(w)
}

func orderedGraphs(cells []Cell) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Graph] {
			seen[c.Graph] = true
			out = append(out, c.Graph)
		}
	}
	return out
}

// --- Fig. 4: correlation of counts with times ---

// Fig4Result holds the R² coefficients over the measurement matrix: pooled
// across platforms (the paper's framing — all its platforms share Giraph's
// per-call costs) and per platform (this repo's platforms have heterogeneous
// per-call costs, so the within-platform fit is the sharper signal).
type Fig4Result struct {
	Points          int
	R2Compute       float64
	R2Messaging     float64
	PerPlatform     []Fig4PlatformRow
	ComputePoints   [][2]float64 // (compute calls, compute+ seconds)
	MessagingPoints [][2]float64 // (messages, messaging seconds)
}

// Fig4PlatformRow is one platform's correlation.
type Fig4PlatformRow struct {
	Platform    Platform
	Points      int
	R2Compute   float64
	R2Messaging float64
}

// Fig4 computes the log-log correlations of Fig. 4 from a matrix.
func Fig4(cells []Cell) Fig4Result {
	var res Fig4Result
	var cx, cy, mx, my []float64
	perCX := map[Platform][]float64{}
	perCY := map[Platform][]float64{}
	perMX := map[Platform][]float64{}
	perMY := map[Platform][]float64{}
	for _, c := range cells {
		cc := float64(c.M.ComputeCalls)
		ct := c.M.ComputePlusTime.Seconds()
		ms := float64(c.M.Messages)
		mt := c.M.MessagingTime.Seconds()
		if cc > 0 && ct > 0 {
			cx, cy = append(cx, cc), append(cy, ct)
			perCX[c.Platform] = append(perCX[c.Platform], cc)
			perCY[c.Platform] = append(perCY[c.Platform], ct)
			res.ComputePoints = append(res.ComputePoints, [2]float64{cc, ct})
		}
		if ms > 0 && mt > 0 {
			mx, my = append(mx, ms), append(my, mt)
			perMX[c.Platform] = append(perMX[c.Platform], ms)
			perMY[c.Platform] = append(perMY[c.Platform], mt)
			res.MessagingPoints = append(res.MessagingPoints, [2]float64{ms, mt})
		}
	}
	res.Points = len(cells)
	res.R2Compute = stats.R2LogLog(cx, cy)
	res.R2Messaging = stats.R2LogLog(mx, my)
	for _, pl := range []Platform{ICM, MSB, CHL, TGB, GOF} {
		if len(perCX[pl]) == 0 {
			continue
		}
		res.PerPlatform = append(res.PerPlatform, Fig4PlatformRow{
			Platform:    pl,
			Points:      len(perCX[pl]),
			R2Compute:   stats.R2LogLog(perCX[pl], perCY[pl]),
			R2Messaging: stats.R2LogLog(perMX[pl], perMY[pl]),
		})
	}
	return res
}

// RenderFig4 prints the correlation summary.
func RenderFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintln(w, "Fig. 4: log-log correlation between primitive counts and their time contributions")
	fmt.Fprintf(w, "  data points: %d\n", r.Points)
	fmt.Fprintf(w, "  R^2 (compute calls vs compute+ time):   %.2f   (paper: 0.80, pooled over one engine)\n", r.R2Compute)
	fmt.Fprintf(w, "  R^2 (messages vs messaging time):       %.2f   (paper: 0.95)\n", r.R2Messaging)
	fmt.Fprintln(w, "  within-platform fits (uniform per-call cost, the comparable setting):")
	for _, row := range r.PerPlatform {
		fmt.Fprintf(w, "    %-9s points=%-3d R^2 compute=%.2f messaging=%.2f\n",
			row.Platform, row.Points, row.R2Compute, row.R2Messaging)
	}
}

// --- Fig. 5: per-algorithm makespan splits and counts ---

// RenderFig5 prints, per graph and algorithm, each platform's makespan split
// and primitive counts.
func RenderFig5(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Fig. 5: makespan (compute+ / messaging / barrier) and primitive counts per algorithm")
	t := stats.Table{Header: []string{
		"Graph", "Algo", "Platform", "Makespan", "Compute+", "Messaging", "Barrier",
		"ComputeCalls", "Messages", "MsgBytes", "Supersteps",
	}}
	for _, c := range cells {
		t.Add(c.Graph, string(c.Algo), string(c.Platform),
			c.M.Makespan.Round(time.Microsecond), c.M.ComputePlusTime.Round(time.Microsecond),
			c.M.MessagingTime.Round(time.Microsecond), c.M.BarrierTime.Round(time.Microsecond),
			c.M.ComputeCalls, c.M.Messages, c.M.MessageBytes, c.M.Supersteps)
	}
	t.Render(w)
}
