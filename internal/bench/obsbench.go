package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/gen"
	"graphite/internal/obs"
	"graphite/internal/stats"
)

// --- obs: observability overhead guard ---
//
// The experiment pins the cost of full instrumentation: every run is
// executed twice, bare (Tracer and Registry both nil — the engine's
// fast path compiles the emission sites down to nil checks) and
// instrumented (a live registry plus a JSONL tracer serializing every
// event, written to io.Discard so the measurement excludes disk but keeps
// the full marshal cost). The per-algorithm overhead ratio
// (instrumented/bare − 1, medians of obsRuns interleaved runs) must stay
// under ObsOverheadBound, or the experiment — and `make bench-obs` — fails.
// The guard exists so instrumentation added later (new events, labeled
// series, histogram observations on the superstep path) cannot silently
// turn the observability plane into the straggler it is meant to find.

// obsRuns is how many measured runs back each (algo, mode) cell; cells
// report the median. Bare and instrumented runs are interleaved so slow
// drift (thermal, scheduler) hits both modes alike.
const obsRuns = 5

// ObsOverheadBound is the pinned ceiling on the per-algorithm overhead
// ratio. Typical measured overhead is under 5%; the bound leaves headroom
// for noisy CI machines while still catching an accidentally quadratic or
// allocation-heavy emission path, which shows up as integer multiples.
const ObsOverheadBound = 0.50

// ObsAlgos are the algorithms of the overhead guard: PageRank is the
// dense all-active load (most events per superstep), SSSP the sparse
// frontier load (emission cost relative to tiny supersteps).
var ObsAlgos = []Algo{PR, SSSP}

// ObsRow is one (algorithm, mode) cell of the overhead report.
type ObsRow struct {
	Algo Algo `json:"algo"`
	// Mode is "bare" (Tracer and Registry nil) or "instrumented" (registry
	// plus JSONL tracer to io.Discard).
	Mode       string  `json:"mode"`
	Supersteps int     `json:"supersteps"`
	MakespanMS float64 `json:"makespan_ms"`
	// Events is the number of trace events emitted per run (zero when bare).
	Events int64 `json:"events,omitempty"`
}

// ObsOverhead is the per-algorithm verdict.
type ObsOverhead struct {
	Algo Algo `json:"algo"`
	// Ratio is instrumented/bare − 1 on the median makespans.
	Ratio float64 `json:"ratio"`
	Bound float64 `json:"bound"`
	Pass  bool    `json:"pass"`
}

// ObsReport is the full overhead experiment.
type ObsReport struct {
	Graph    string        `json:"graph"`
	Vertices int           `json:"vertices"`
	Edges    int           `json:"edges"`
	Workers  int           `json:"workers"`
	Runs     int           `json:"runs_per_cell"`
	Rows     []ObsRow      `json:"rows"`
	Verdicts []ObsOverhead `json:"verdicts"`
}

// countTracer counts events on their way into a wrapped tracer.
type countTracer struct {
	inner obs.Tracer
	n     int64
}

func (t *countTracer) Emit(e obs.Event) {
	t.n++
	t.inner.Emit(e)
}

// Obs runs the observability overhead guard. It returns an error — failing
// the bench invocation — when any algorithm's overhead ratio exceeds
// ObsOverheadBound.
func Obs(cfg Config) (*ObsReport, error) {
	p := gen.SkewedLike(cfg.Scale)
	g, err := gen.Generate(p, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", p.Name, err)
	}
	rep := &ObsReport{
		Graph:    p.Name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Workers:  cfg.Workers,
		Runs:     obsRuns,
	}

	for _, al := range ObsAlgos {
		run := func(tr obs.Tracer, reg *obs.Registry) (*core.Result, error) {
			prog, opts, err := algorithms.New(g, strings.ToLower(string(al)), algorithms.Params{
				Source:     g.VertexAt(0).ID,
				Target:     g.VertexAt(g.NumVertices() - 1).ID,
				Iterations: cfg.PRIterations,
			})
			if err != nil {
				return nil, err
			}
			opts.NumWorkers = cfg.Workers
			opts.Tracer = tr
			opts.Registry = reg
			opts.Span = "bench-obs"
			return core.Run(g, prog, opts)
		}
		if _, err := run(nil, nil); err != nil { // warm-up
			return nil, fmt.Errorf("bench: obs %s: %w", al, err)
		}

		var bare, instr []time.Duration
		var supersteps int
		var events int64
		for i := 0; i < obsRuns; i++ {
			r, err := run(nil, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: obs %s bare: %w", al, err)
			}
			bare = append(bare, r.Metrics.Makespan)
			supersteps = r.Metrics.Supersteps

			ct := &countTracer{inner: obs.NewJSONLTracer(io.Discard)}
			r, err = run(ct, obs.NewRegistry())
			if err != nil {
				return nil, fmt.Errorf("bench: obs %s instrumented: %w", al, err)
			}
			instr = append(instr, r.Metrics.Makespan)
			events = ct.n
		}
		sort.Slice(bare, func(a, b int) bool { return bare[a] < bare[b] })
		sort.Slice(instr, func(a, b int) bool { return instr[a] < instr[b] })
		mb, mi := bare[len(bare)/2], instr[len(instr)/2]

		rep.Rows = append(rep.Rows,
			ObsRow{Algo: al, Mode: "bare", Supersteps: supersteps,
				MakespanMS: float64(mb.Microseconds()) / 1e3},
			ObsRow{Algo: al, Mode: "instrumented", Supersteps: supersteps,
				MakespanMS: float64(mi.Microseconds()) / 1e3, Events: events})
		ratio := 0.0
		if mb > 0 {
			ratio = float64(mi)/float64(mb) - 1
		}
		rep.Verdicts = append(rep.Verdicts, ObsOverhead{
			Algo: al, Ratio: ratio, Bound: ObsOverheadBound,
			Pass: ratio <= ObsOverheadBound,
		})
	}

	for _, v := range rep.Verdicts {
		if !v.Pass {
			return rep, fmt.Errorf("bench: obs overhead guard failed: %s instrumentation costs %.1f%% (bound %.0f%%)",
				v.Algo, v.Ratio*100, v.Bound*100)
		}
	}
	return rep, nil
}

// RenderObs prints the overhead report.
func RenderObs(w io.Writer, rep *ObsReport) {
	fmt.Fprintf(w, "Obs: instrumentation overhead on %q (%d vertices, %d edges, %d workers, median of %d interleaved runs)\n",
		rep.Graph, rep.Vertices, rep.Edges, rep.Workers, rep.Runs)
	t := stats.Table{Header: []string{"Algo", "Mode", "Supersteps", "Makespan ms", "Events"}}
	for _, r := range rep.Rows {
		ev := "-"
		if r.Mode == "instrumented" {
			ev = fmt.Sprint(r.Events)
		}
		t.Add(string(r.Algo), r.Mode, r.Supersteps, fmt.Sprintf("%.2f", r.MakespanMS), ev)
	}
	t.Render(w)
	for _, v := range rep.Verdicts {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  %-5s overhead %+.1f%% (bound %.0f%%) %s\n",
			v.Algo, v.Ratio*100, v.Bound*100, verdict)
	}
}

// WriteObsJSON writes the report as indented JSON (the BENCH_obs.json
// artifact the Makefile bench-obs target records).
func WriteObsJSON(path string, rep *ObsReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
