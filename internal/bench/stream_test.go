package bench

import "testing"

// TestStreamSmoke runs the live-graph experiment at toy scale: ingest
// through a real fsync'd WAL, replay, and the incremental-vs-cold cells
// with their bit-identity check.
func TestStreamSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	cfg.Workers = 4
	rep, err := Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.Vertices == 0 || rep.IngestEventsPerSec <= 0 || rep.WALBytes == 0 {
		t.Fatalf("degenerate ingest measurements: %+v", rep)
	}
	if rep.ReplayMS < 0 || rep.ReplayEventsPerSec <= 0 {
		t.Fatalf("degenerate replay measurements: %+v", rep)
	}
	if len(rep.Rows) != len(StreamAlgos) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(StreamAlgos))
	}
	for _, r := range rep.Rows {
		if !r.Identical {
			t.Fatalf("%s: incremental diverged from cold", r.Algo)
		}
		if r.FullSupersteps <= r.IncrementalSupersteps {
			t.Errorf("%s: seeded run took %d supersteps, cold %d — seeding saved nothing",
				r.Algo, r.IncrementalSupersteps, r.FullSupersteps)
		}
		if r.FullMS <= 0 || r.IncrementalMS <= 0 {
			t.Errorf("%s: unmeasured cell: %+v", r.Algo, r)
		}
	}
}
