package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/baseline/tgb"
	"graphite/internal/core"
	"graphite/internal/gen"
	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

// --- Fig. 6(a): in-memory representation footprints ---

// Fig6aRow compares representation sizes for one dataset.
type Fig6aRow struct {
	Graph        string
	IntervalB    int64 // ICM's interval graph
	TransformedB int64 // TGB's path-transformed graph
	SnapshotB    int64 // MSB's largest single snapshot
	BatchB       int64 // Chlonos's largest batch (BatchSize snapshots)
}

// Fig6a measures the memory footprint of each platform's representation.
func Fig6a(cfg Config) ([]Fig6aRow, error) {
	ds, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig6aRow
	for _, d := range ds {
		g := d.Graph
		s := tgb.TransformPath(g, tgb.ChainFree, tgb.CostWeight, nil)
		snap := g.LargestSnapshotFootprint()
		rows = append(rows, Fig6aRow{
			Graph:        d.Profile.Name,
			IntervalB:    g.MemoryFootprint(),
			TransformedB: s.MemoryFootprint(),
			SnapshotB:    snap,
			BatchB:       snap * int64(cfg.BatchSize),
		})
	}
	return rows, nil
}

// RenderFig6a prints the footprint comparison.
func RenderFig6a(w io.Writer, rows []Fig6aRow) {
	fmt.Fprintln(w, "Fig. 6(a): in-memory representation footprint (bytes)")
	t := stats.Table{Header: []string{"Graph", "Interval(ICM)", "Transformed(TGB)", "Snapshot(MSB)", "Batch(CHL)", "TGB/ICM"}}
	for _, r := range rows {
		ratio := float64(r.TransformedB) / float64(r.IntervalB)
		t.Add(r.Graph, r.IntervalB, r.TransformedB, r.SnapshotB, r.BatchB, ratio)
	}
	t.Render(w)
}

// --- Fig. 6(b): warp-combiner ablation ---

// Fig6bRow is one algorithm's with/without-combiner comparison.
type Fig6bRow struct {
	Algo            Algo
	ComputeWith     time.Duration
	ComputeWithout  time.Duration
	MakespanWith    time.Duration
	MakespanWithout time.Duration
}

// Fig6b measures the inline warp combiner's benefit on a long-lifespan
// dataset (the paper uses MAG) for the combinable algorithms.
func Fig6b(cfg Config) ([]Fig6bRow, error) {
	g, err := gen.Generate(gen.MAGLike(cfg.Scale), cfg.Seed)
	if err != nil {
		return nil, err
	}
	source := g.VertexAt(0).ID
	var rows []Fig6bRow
	for _, al := range []Algo{BFS, WCC, PR, SSSP, EAT, RH, TMST} {
		with, err := bestOf(3, func() (*core.Result, error) { return runICMCombiner(cfg, al, g, source, false) })
		if err != nil {
			return nil, err
		}
		without, err := bestOf(3, func() (*core.Result, error) { return runICMCombiner(cfg, al, g, source, true) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6bRow{
			Algo:            al,
			ComputeWith:     with.Metrics.ComputePlusTime,
			ComputeWithout:  without.Metrics.ComputePlusTime,
			MakespanWith:    with.Metrics.Makespan,
			MakespanWithout: without.Metrics.Makespan,
		})
	}
	return rows, nil
}

// bestOf runs fn k times and keeps the fastest run — the standard defense
// against scheduler noise on small makespans.
func bestOf(k int, fn func() (*core.Result, error)) (*core.Result, error) {
	var best *core.Result
	for i := 0; i < k; i++ {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		if best == nil || r.Metrics.Makespan < best.Metrics.Makespan {
			best = r
		}
	}
	return best, nil
}

func runICMCombiner(cfg Config, al Algo, g *tgraph.Graph, source tgraph.VertexID, disable bool) (*core.Result, error) {
	var prog core.Program
	var opts core.Options
	switch al {
	case BFS:
		a := &algorithms.BFS{Source: source}
		prog, opts = a, a.Options()
	case WCC:
		a := &algorithms.WCC{}
		prog, opts = a, a.Options()
	case PR:
		a := algorithms.NewPageRank(g, cfg.PRIterations, 0.85)
		prog, opts = a, a.Options()
	case SSSP:
		a := &algorithms.SSSP{Source: source}
		prog, opts = a, a.Options()
	case EAT:
		a := &algorithms.EAT{Source: source}
		prog, opts = a, a.Options()
	case RH:
		a := &algorithms.RH{Source: source}
		prog, opts = a, a.Options()
	case TMST:
		a := &algorithms.TMST{Source: source}
		prog, opts = a, a.Options()
	default:
		return nil, fmt.Errorf("bench: %q has no combiner ablation", al)
	}
	opts.NumWorkers = cfg.Workers
	opts.DisableWarpCombiner = disable
	if disable {
		opts.ReceiverCombine = false
	}
	opts.Tracer = cfg.Tracer
	opts.Registry = cfg.Registry
	return core.Run(g, prog, opts)
}

// RenderFig6b prints the combiner ablation.
func RenderFig6b(w io.Writer, rows []Fig6bRow) {
	fmt.Fprintln(w, "Fig. 6(b): inline warp combiner on vs off (mag-like graph)")
	t := stats.Table{Header: []string{"Algo", "Compute+ with", "Compute+ without", "Makespan with", "Makespan without", "Speedup"}}
	for _, r := range rows {
		speedup := float64(r.MakespanWithout) / float64(r.MakespanWith)
		t.Add(string(r.Algo), r.ComputeWith.Round(time.Microsecond), r.ComputeWithout.Round(time.Microsecond),
			r.MakespanWith.Round(time.Microsecond), r.MakespanWithout.Round(time.Microsecond), speedup)
	}
	t.Render(w)
}

// --- Fig. 6(c): warp suppression ablation ---

// Fig6cRow is one algorithm's with/without-suppression comparison on the
// unit-lifespan dataset.
type Fig6cRow struct {
	Algo            Algo
	MakespanWith    time.Duration
	MakespanWithout time.Duration
	Suppressed      int64
}

// Fig6c measures automatic warp suppression on the gplus-like graph — the
// worst case for ICM, where everything is unit-length.
func Fig6c(cfg Config) ([]Fig6cRow, error) {
	// A larger instance of the unit-lifespan profile beats timing noise.
	g, err := gen.Generate(gen.GPlusLike(cfg.Scale*4), cfg.Seed)
	if err != nil {
		return nil, err
	}
	source := g.VertexAt(0).ID
	var rows []Fig6cRow
	for _, al := range []Algo{BFS, WCC, SSSP, EAT, RH} {
		with, err := bestOf(3, func() (*core.Result, error) { return runICMSuppression(cfg, al, g, source, false) })
		if err != nil {
			return nil, err
		}
		without, err := bestOf(3, func() (*core.Result, error) { return runICMSuppression(cfg, al, g, source, true) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6cRow{
			Algo:            al,
			MakespanWith:    with.Metrics.Makespan,
			MakespanWithout: without.Metrics.Makespan,
			Suppressed:      with.Stats.WarpSuppressed,
		})
	}
	return rows, nil
}

func runICMSuppression(cfg Config, al Algo, g *tgraph.Graph, source tgraph.VertexID, disable bool) (*core.Result, error) {
	var prog core.Program
	var opts core.Options
	switch al {
	case BFS:
		a := &algorithms.BFS{Source: source}
		prog, opts = a, a.Options()
	case WCC:
		a := &algorithms.WCC{}
		prog, opts = a, a.Options()
	case SSSP:
		a := &algorithms.SSSP{Source: source}
		prog, opts = a, a.Options()
	case EAT:
		a := &algorithms.EAT{Source: source}
		prog, opts = a, a.Options()
	case RH:
		a := &algorithms.RH{Source: source}
		prog, opts = a, a.Options()
	default:
		return nil, fmt.Errorf("bench: %q has no suppression ablation", al)
	}
	opts.NumWorkers = cfg.Workers
	opts.DisableSuppression = disable
	opts.Tracer = cfg.Tracer
	opts.Registry = cfg.Registry
	return core.Run(g, prog, opts)
}

// RenderFig6c prints the suppression ablation.
func RenderFig6c(w io.Writer, rows []Fig6cRow) {
	fmt.Fprintln(w, "Fig. 6(c): automatic warp suppression on vs off (gplus-like graph, unit lifespans)")
	t := stats.Table{Header: []string{"Algo", "Makespan with", "Makespan without", "Speedup", "SuppressedVertices"}}
	for _, r := range rows {
		speedup := float64(r.MakespanWithout) / float64(r.MakespanWith)
		t.Add(string(r.Algo), r.MakespanWith.Round(time.Microsecond),
			r.MakespanWithout.Round(time.Microsecond), speedup, r.Suppressed)
	}
	t.Render(w)
}

// --- Fig. 7: weak scaling ---

// Fig7Row is one (machines, algorithm) weak-scaling measurement.
type Fig7Row struct {
	Machines     int
	Algo         Algo
	Makespan     time.Duration
	ComputeCalls int64
}

// Fig7 runs the weak-scaling experiment: LDBC-like graphs whose size grows
// with the worker count, fixed load per worker, all twelve algorithms.
func Fig7(cfg Config, machines []int, algos []Algo) ([]Fig7Row, error) {
	if len(machines) == 0 {
		machines = []int{1, 2, 4, 8, 10}
	}
	if len(algos) == 0 {
		algos = append(append([]Algo{}, TIAlgos...), TDAlgos...)
	}
	var rows []Fig7Row
	for _, m := range machines {
		g, err := gen.Generate(gen.LDBCLike(m, cfg.Scale), cfg.Seed)
		if err != nil {
			return nil, err
		}
		sub := cfg
		sub.Workers = m
		for _, al := range algos {
			met, err := Run(sub, ICM, al, g)
			if err != nil {
				return nil, fmt.Errorf("bench: fig7 %dm/%s: %w", m, al, err)
			}
			rows = append(rows, Fig7Row{Machines: m, Algo: al, Makespan: met.Makespan, ComputeCalls: met.ComputeCalls})
		}
	}
	return rows, nil
}

// RenderFig7 prints the scaling table with two efficiency views. "Wall"
// efficiency (makespan_1 / makespan_m) is the paper's metric and is only
// meaningful when the host has at least as many cores as machines.
// "Serialized" efficiency (makespan_1 / (makespan_m / m)) is the correct
// reading on a time-shared or single-core host, where m workers multiply
// the wall-clock by m even under ideal scaling. "LoadEff" checks that the
// per-machine primitive load actually stayed constant.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Fig. 7: weak scaling of GRAPHITE (fixed load per worker; host has %d core(s))\n", runtime.NumCPU())
	baseT := map[Algo]time.Duration{}
	baseC := map[Algo]int64{}
	for _, r := range rows {
		if r.Machines == 1 {
			baseT[r.Algo] = r.Makespan
			baseC[r.Algo] = r.ComputeCalls
		}
	}
	t := stats.Table{Header: []string{"Machines", "Algo", "Makespan", "WallEff", "SerializedEff", "LoadEff"}}
	for _, r := range rows {
		wall, ser, load := "-", "-", "-"
		if b, ok := baseT[r.Algo]; ok && r.Makespan > 0 {
			wall = fmt.Sprintf("%.0f%%", 100*float64(b)/float64(r.Makespan))
			ser = fmt.Sprintf("%.0f%%", 100*float64(b)*float64(r.Machines)/float64(r.Makespan))
		}
		if b, ok := baseC[r.Algo]; ok && r.ComputeCalls > 0 {
			load = fmt.Sprintf("%.0f%%", 100*float64(b)*float64(r.Machines)/float64(r.ComputeCalls))
		}
		t.Add(r.Machines, string(r.Algo), r.Makespan.Round(time.Microsecond), wall, ser, load)
	}
	t.Render(w)
}

// --- Sec. VI: interval message encoding savings ---

// MsgSizeRow reports the var-byte encoding saving for one dataset.
type MsgSizeRow struct {
	Graph      string
	Messages   int64
	VarBytes   int64
	FixedBytes int64
	Saving     float64
}

// MsgSize runs ICM SSSP on every dataset and compares the var-byte message
// bytes against the fixed two-longs-per-interval encoding. The paper reports
// 59-78% savings.
func MsgSize(cfg Config) ([]MsgSizeRow, error) {
	ds, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []MsgSizeRow
	for _, d := range ds {
		m, err := Run(cfg, ICM, SSSP, d.Graph)
		if err != nil {
			return nil, err
		}
		fixed := m.Messages * (16 + 8) // two fixed longs + fixed payload
		saving := 0.0
		if fixed > 0 {
			saving = 1 - float64(m.MessageBytes)/float64(fixed)
		}
		rows = append(rows, MsgSizeRow{
			Graph: d.Profile.Name, Messages: m.Messages,
			VarBytes: m.MessageBytes, FixedBytes: fixed, Saving: saving,
		})
	}
	return rows, nil
}

// RenderMsgSize prints the encoding comparison.
func RenderMsgSize(w io.Writer, rows []MsgSizeRow) {
	fmt.Fprintln(w, "Interval message encoding: var-byte vs fixed 16B intervals + 8B payload (paper: 59-78% saving)")
	t := stats.Table{Header: []string{"Graph", "Messages", "VarBytes", "FixedBytes", "Saving"}}
	for _, r := range rows {
		t.Add(r.Graph, r.Messages, r.VarBytes, r.FixedBytes, fmt.Sprintf("%.0f%%", 100*r.Saving))
	}
	t.Render(w)
}
