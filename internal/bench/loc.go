package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"graphite/internal/stats"
)

// osReadFile aliases os.ReadFile for the readFile seam.
var osReadFile = os.ReadFile

// LoCRow is the user-logic line count of one algorithm on one platform
// (Sec. VII-B8: ICM algorithms are 15-47% more concise than Chlonos, 19-44%
// than GoFFish, 46-152% than TGB, and within 3-19% of MSB).
type LoCRow struct {
	Algo     Algo
	Platform Platform
	Lines    int
}

// algoSources maps (platform, algorithm) to the source files holding the
// user logic in this repository. Shared files are attributed to every
// algorithm they implement, matching how a user would count the code they
// must write.
var algoSources = map[Platform]map[Algo][]string{
	ICM: {
		BFS: {"internal/algorithms/bfs.go"}, WCC: {"internal/algorithms/wcc.go"},
		SCC: {"internal/algorithms/scc.go"}, PR: {"internal/algorithms/pagerank.go"},
		SSSP: {"internal/algorithms/sssp.go"}, EAT: {"internal/algorithms/eat.go"},
		FAST: {"internal/algorithms/fast.go"}, LD: {"internal/algorithms/ld.go"},
		TMST: {"internal/algorithms/tmst.go"}, RH: {"internal/algorithms/rh.go"},
		LCC: {"internal/algorithms/lcc.go"}, TC: {"internal/algorithms/tc.go"},
	},
	MSB: {
		BFS: {"internal/baseline/valgo/valgo.go:BFS"}, WCC: {"internal/baseline/valgo/valgo.go:WCC"},
		SCC: {"internal/baseline/valgo/valgo.go:SCC"}, PR: {"internal/baseline/valgo/valgo.go:PageRank"},
	},
	CHL: {
		// Chlonos executes the same valgo programs; its user-facing LoC is
		// MSB's, exactly as the paper's shared-logic setup.
		BFS: {"internal/baseline/valgo/valgo.go:BFS"}, WCC: {"internal/baseline/valgo/valgo.go:WCC"},
		SCC: {"internal/baseline/valgo/valgo.go:SCC"}, PR: {"internal/baseline/valgo/valgo.go:PageRank"},
	},
	GOF: {
		SSSP: {"internal/baseline/goffish/algorithms.go:sssp"},
		EAT:  {"internal/baseline/goffish/algorithms.go:eat"},
		FAST: {"internal/baseline/goffish/algorithms.go:fast"},
		TMST: {"internal/baseline/goffish/algorithms.go:tmst"},
		RH:   {"internal/baseline/goffish/algorithms.go:rh"},
		LD:   {"internal/baseline/goffish/backward.go"},
		LCC:  {"internal/baseline/goffish/clustering.go"},
		TC:   {"internal/baseline/goffish/clustering.go"},
	},
	TGB: {
		SSSP: {"internal/baseline/tgb/transform.go", "internal/baseline/tgb/algorithms.go"},
		EAT:  {"internal/baseline/tgb/transform.go", "internal/baseline/tgb/algorithms.go"},
		FAST: {"internal/baseline/tgb/transform.go", "internal/baseline/tgb/algorithms.go"},
		LD:   {"internal/baseline/tgb/transform.go", "internal/baseline/tgb/algorithms.go"},
		TMST: {"internal/baseline/tgb/transform.go", "internal/baseline/tgb/algorithms.go"},
		RH:   {"internal/baseline/tgb/transform.go", "internal/baseline/tgb/algorithms.go"},
		LCC:  {"internal/baseline/tgb/clustering.go"},
		TC:   {"internal/baseline/tgb/clustering.go"},
	},
}

// moduleRoot locates the repository root from this source file's path.
func moduleRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countLoC counts non-blank, non-comment lines of a file; a ":prefix"
// suffix restricts counting to top-level declarations whose name contains
// the prefix (case-insensitive), approximating per-algorithm attribution in
// shared files.
func countLoC(root, spec string) (int, error) {
	path, filter := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		path, filter = spec[:i], strings.ToLower(spec[i+1:])
	}
	data, err := readFile(filepath.Join(root, path))
	if err != nil {
		return 0, err
	}
	lines := strings.Split(string(data), "\n")
	count := 0
	include := filter == "" // no filter: count the whole file
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if filter != "" && (strings.HasPrefix(trimmed, "func ") || strings.HasPrefix(trimmed, "type ")) {
			include = strings.Contains(strings.ToLower(trimmed), filter)
		}
		if !include || trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		count++
	}
	return count, nil
}

// LoCTable counts lines of user logic per algorithm per platform.
func LoCTable() ([]LoCRow, error) {
	root := moduleRoot()
	var rows []LoCRow
	for _, pl := range []Platform{ICM, MSB, CHL, TGB, GOF} {
		for al, files := range algoSources[pl] {
			total := 0
			for _, f := range files {
				n, err := countLoC(root, f)
				if err != nil {
					return nil, fmt.Errorf("bench: loc %s/%s: %w", pl, al, err)
				}
				total += n
			}
			rows = append(rows, LoCRow{Algo: al, Platform: pl, Lines: total})
		}
	}
	return rows, nil
}

// RenderLoC prints the line-count table.
func RenderLoC(w io.Writer, rows []LoCRow) {
	fmt.Fprintln(w, "Lines of user-logic code per algorithm and platform (Sec. VII-B8; Chlonos shares MSB's logic)")
	t := stats.Table{Header: []string{"Platform", "Algo", "LoC"}}
	order := append(append([]Algo{}, TIAlgos...), TDAlgos...)
	for _, pl := range []Platform{ICM, MSB, CHL, TGB, GOF} {
		for _, al := range order {
			for _, r := range rows {
				if r.Platform == pl && r.Algo == al {
					t.Add(string(pl), string(al), r.Lines)
				}
			}
		}
	}
	t.Render(w)
}

// readFile is a seam for tests; defaults to os.ReadFile.
var readFile = osReadFile
