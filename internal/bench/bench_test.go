package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig shrinks everything for unit testing the harness machinery.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.Workers = 4
	cfg.PRIterations = 3
	return cfg
}

func TestDatasetsGenerate(t *testing.T) {
	ds, err := Datasets(tinyConfig())
	if err != nil {
		t.Fatalf("Datasets: %v", err)
	}
	if len(ds) != 6 {
		t.Fatalf("want 6 datasets, got %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Profile.Name] = true
		if d.Graph.NumVertices() == 0 || d.Graph.NumEdges() == 0 {
			t.Errorf("dataset %s is degenerate: %v", d.Profile.Name, d.Graph)
		}
	}
	for _, n := range []string{"gplus", "reddit", "usrn", "twitter", "mag", "webuk"} {
		if !names[n] {
			t.Errorf("missing dataset %s", n)
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tinyConfig())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.C.TransformedV < r.C.IntervalV {
			t.Errorf("%s: transformed |V| %d < interval |V| %d", r.Name, r.C.TransformedV, r.C.IntervalV)
		}
	}
	// Characteristic shape checks mirroring the paper's Table 1.
	if g := byName["gplus"]; g.C.AvgEdgeLife > 1.01 {
		t.Errorf("gplus edges must be unit-length, got avg %f", g.C.AvgEdgeLife)
	}
	if tw := byName["twitter"]; tw.C.AvgEdgeLife < float64(tw.C.Snapshots)/2 {
		t.Errorf("twitter edges should span most of the lifetime: avg %f of %d", tw.C.AvgEdgeLife, tw.C.Snapshots)
	}
	if u := byName["usrn"]; u.C.AvgEdgeLife != float64(u.C.Snapshots) {
		t.Errorf("usrn topology is static: avg edge life %f != %d", u.C.AvgEdgeLife, u.C.Snapshots)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "usrn") {
		t.Errorf("render missing dataset row:\n%s", buf.String())
	}
}

func TestRunMatrixAndDerivedTables(t *testing.T) {
	cfg := tinyConfig()
	cells, err := RunMatrix(cfg, []Algo{BFS, SSSP})
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	// 6 graphs x (BFS on 3 platforms + SSSP on 3 platforms).
	if len(cells) != 6*6 {
		t.Fatalf("want 36 cells, got %d", len(cells))
	}
	rows := Table2(cells)
	if len(rows) == 0 {
		t.Fatalf("Table2 produced no rows")
	}
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Errorf("ratio must be positive: %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "GoFFish") {
		t.Errorf("render missing platform:\n%s", buf.String())
	}

	f4 := Fig4(cells)
	if f4.Points != len(cells) {
		t.Errorf("fig4 points = %d, want %d", f4.Points, len(cells))
	}
	buf.Reset()
	RenderFig4(&buf, f4)
	RenderFig5(&buf, cells)
	if !strings.Contains(buf.String(), "ComputeCalls") {
		t.Errorf("fig5 render incomplete")
	}
}

func TestCountsIntrinsicToModelNotWorkers(t *testing.T) {
	// Sec. VII-B1: compute-call and message counts are intrinsic to the
	// programming model; they must not depend on the worker count.
	cfg := tinyConfig()
	ds, err := Datasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ds[3].Graph // twitter-like
	for _, al := range []Algo{BFS, SSSP, LD, TC} {
		var calls, msgs int64
		for i, w := range []int{1, 3, 7} {
			sub := cfg
			sub.Workers = w
			m, err := Run(sub, ICM, al, g)
			if err != nil {
				t.Fatalf("%s: %v", al, err)
			}
			if i == 0 {
				calls, msgs = m.ComputeCalls, m.Messages
				continue
			}
			if m.ComputeCalls != calls || m.Messages != msgs {
				t.Errorf("%s: counts vary with workers: (%d,%d) vs (%d,%d)",
					al, m.ComputeCalls, m.Messages, calls, msgs)
			}
		}
	}
}

func TestFig6a(t *testing.T) {
	rows, err := Fig6a(tinyConfig())
	if err != nil {
		t.Fatalf("Fig6a: %v", err)
	}
	byName := map[string]Fig6aRow{}
	for _, r := range rows {
		byName[r.Graph] = r
		if r.IntervalB <= 0 || r.TransformedB <= 0 || r.SnapshotB <= 0 {
			t.Errorf("footprints must be positive: %+v", r)
		}
	}
	// The transformed graph must blow up most on long-lifespan graphs.
	tw := byName["twitter"]
	if tw.TransformedB <= tw.IntervalB {
		t.Errorf("twitter transformed footprint %d should exceed interval %d", tw.TransformedB, tw.IntervalB)
	}
	var buf bytes.Buffer
	RenderFig6a(&buf, rows)
	if !strings.Contains(buf.String(), "TGB/ICM") {
		t.Errorf("fig6a render incomplete")
	}
}

func TestFig6bAnd6c(t *testing.T) {
	cfg := tinyConfig()
	b, err := Fig6b(cfg)
	if err != nil {
		t.Fatalf("Fig6b: %v", err)
	}
	if len(b) == 0 {
		t.Fatalf("no combiner rows")
	}
	c, err := Fig6c(cfg)
	if err != nil {
		t.Fatalf("Fig6c: %v", err)
	}
	found := false
	for _, r := range c {
		if r.Suppressed > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("suppression never engaged on the unit-lifespan graph")
	}
	var buf bytes.Buffer
	RenderFig6b(&buf, b)
	RenderFig6c(&buf, c)
	if !strings.Contains(buf.String(), "Speedup") {
		t.Errorf("fig6 render incomplete")
	}
}

func TestFig7(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Fig7(cfg, []int{1, 2}, []Algo{BFS, SSSP})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	var buf bytes.Buffer
	RenderFig7(&buf, rows)
	if !strings.Contains(buf.String(), "SerializedEff") {
		t.Errorf("fig7 render incomplete")
	}
}

func TestMsgSize(t *testing.T) {
	rows, err := MsgSize(tinyConfig())
	if err != nil {
		t.Fatalf("MsgSize: %v", err)
	}
	for _, r := range rows {
		if r.Messages == 0 {
			continue
		}
		if r.Saving <= 0 {
			t.Errorf("%s: var-byte encoding should save bytes, got %.2f", r.Graph, r.Saving)
		}
	}
	var buf bytes.Buffer
	RenderMsgSize(&buf, rows)
	if !strings.Contains(buf.String(), "Saving") {
		t.Errorf("msgsize render incomplete")
	}
}

func TestLoCTable(t *testing.T) {
	rows, err := LoCTable()
	if err != nil {
		t.Fatalf("LoCTable: %v", err)
	}
	perPlatform := map[Platform]int{}
	for _, r := range rows {
		if r.Lines <= 0 {
			t.Errorf("%s/%s: zero LoC", r.Platform, r.Algo)
		}
		perPlatform[r.Platform]++
	}
	if perPlatform[ICM] != 12 {
		t.Errorf("ICM should have 12 algorithms, got %d", perPlatform[ICM])
	}
	if perPlatform[MSB] != 4 {
		t.Errorf("MSB should have 4 algorithms, got %d", perPlatform[MSB])
	}
	var buf bytes.Buffer
	RenderLoC(&buf, rows)
	if !strings.Contains(buf.String(), "GRAPHITE") {
		t.Errorf("loc render incomplete")
	}
}

func TestRunRejectsBadPairs(t *testing.T) {
	cfg := tinyConfig()
	ds, _ := Datasets(cfg)
	if _, err := Run(cfg, MSB, SSSP, ds[0].Graph); err == nil {
		t.Errorf("MSB must reject TD algorithms")
	}
	if _, err := Run(cfg, TGB, BFS, ds[0].Graph); err == nil {
		t.Errorf("TGB must reject TI algorithms")
	}
	if _, err := Run(cfg, Platform("nope"), BFS, ds[0].Graph); err == nil {
		t.Errorf("unknown platform must error")
	}
}
