// Package vcm implements a plain, non-temporal vertex-centric computing
// model over the BSP engine, scoped to a single snapshot of a temporal
// graph. It is the substrate the baseline platforms of Sec. VII-A3 are built
// from: MSB runs one vcm execution per snapshot, Chlonos batches snapshots
// with shared interval messages (providing its own Ctx), and parts of TGB
// reuse the same programs over transformed graphs.
package vcm

import (
	"graphite/internal/codec"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Ctx is the per-vertex execution surface handed to Program logic. Each
// baseline provides its own implementation (single snapshot here; per-batch
// snapshot slices in Chlonos).
type Ctx interface {
	// Vertex returns the dense vertex index.
	Vertex() int
	// ID returns the vertex id.
	ID() tgraph.VertexID
	// Superstep returns the 1-based superstep.
	Superstep() int
	// Phase returns the master-set phase.
	Phase() int
	// Time returns the snapshot time-point being computed.
	Time() ival.Time
	// NumVertices returns the total vertex count of the temporal graph.
	NumVertices() int
	// State returns this vertex's state for the current snapshot.
	State() any
	// SetState replaces this vertex's state for the current snapshot.
	SetState(v any)
	// OutEdges calls fn for every out-edge alive in the snapshot.
	OutEdges(fn func(e *tgraph.Edge, dst int))
	// InEdges calls fn for every in-edge alive in the snapshot.
	InEdges(fn func(e *tgraph.Edge, src int))
	// OutEdgesSimple calls fn with the destination of every alive out-edge.
	OutEdgesSimple(fn func(dst int))
	// InEdgesSimple calls fn with the source of every alive in-edge.
	InEdgesSimple(fn func(src int))
	// OutDegree returns the number of alive out-edges.
	OutDegree() int
	// Send queues a message for the next superstep, scoped to this snapshot.
	Send(dst int, value any)
	// Aggregate contributes to a named aggregator.
	Aggregate(name string, v any)
	// AggValue reads a named aggregator's previous-superstep value.
	AggValue(name string) any
}

// Program is a snapshot-scoped vertex program. Init runs in superstep 1 on
// every active vertex with no messages; Compute runs on vertices activated
// by messages in later supersteps.
type Program interface {
	Init(ctx Ctx)
	Compute(ctx Ctx, msgs []any)
}

// Options configures a snapshot run.
type Options struct {
	NumWorkers    int
	MaxSupersteps int
	ActivateAll   bool
	Combine       func(a, b any) any
	PayloadCodec  codec.Payload
	Aggregators   map[string]*engine.Aggregator
	Master        engine.Master
}

// Result holds the per-vertex final states of one snapshot run.
type Result struct {
	Metrics *engine.Metrics
	states  []any
}

// State returns the final state of the vertex at dense index v (nil when
// the vertex was inactive in the snapshot).
func (r *Result) State(v int) any { return r.states[v] }

// snapCtx is the single-snapshot Ctx implementation.
type snapCtx struct {
	rt  *runtime
	eng *engine.Context
	idx int
}

func (c *snapCtx) Vertex() int         { return c.idx }
func (c *snapCtx) ID() tgraph.VertexID { return c.rt.snap.G.VertexAt(c.idx).ID }
func (c *snapCtx) Superstep() int      { return c.eng.Superstep() }
func (c *snapCtx) Phase() int          { return c.eng.Phase() }
func (c *snapCtx) Time() ival.Time     { return c.rt.snap.T }
func (c *snapCtx) NumVertices() int    { return c.rt.snap.G.NumVertices() }
func (c *snapCtx) State() any          { return c.rt.states[c.idx] }
func (c *snapCtx) SetState(v any)      { c.rt.states[c.idx] = v }

func (c *snapCtx) OutEdges(fn func(e *tgraph.Edge, dst int)) {
	c.rt.snap.OutEdgesIdx(c.idx, fn)
}

func (c *snapCtx) InEdges(fn func(e *tgraph.Edge, src int)) {
	c.rt.snap.InEdgesIdx(c.idx, fn)
}

func (c *snapCtx) OutEdgesSimple(fn func(dst int)) {
	c.OutEdges(func(_ *tgraph.Edge, dst int) { fn(dst) })
}

func (c *snapCtx) InEdgesSimple(fn func(src int)) {
	c.InEdges(func(_ *tgraph.Edge, src int) { fn(src) })
}

func (c *snapCtx) OutDegree() int { return c.rt.snap.G.OutDegreeAt(c.idx, c.rt.snap.T) }

func (c *snapCtx) Send(dst int, value any) {
	c.eng.Send(dst, ival.Point(c.rt.snap.T), value)
}

func (c *snapCtx) Aggregate(name string, v any) { c.eng.Aggregate(name, v) }
func (c *snapCtx) AggValue(name string) any     { return c.eng.AggValue(name) }

// runtime adapts a Program to the engine for one snapshot.
type runtime struct {
	snap   tgraph.Snapshot
	prog   Program
	states []any
}

// Init implements engine.Program; user init runs in superstep 1 so its
// sends land at the first barrier.
func (rt *runtime) Init(ctx *engine.Context) {}

// Run implements engine.Program.
func (rt *runtime) Run(ctx *engine.Context, msgs []engine.Message) {
	i := ctx.Vertex()
	if !rt.snap.VertexActive(i) {
		return
	}
	c := snapCtx{rt: rt, eng: ctx, idx: i}
	if ctx.Superstep() == 1 {
		ctx.AddComputeCalls(1)
		rt.prog.Init(&c)
		return
	}
	vals := make([]any, len(msgs))
	for k, m := range msgs {
		vals[k] = m.Value
	}
	ctx.AddComputeCalls(1)
	rt.prog.Compute(&c, vals)
}

// RunSnapshot executes a vertex-centric program over the snapshot at time t.
func RunSnapshot(g *tgraph.Graph, t ival.Time, prog Program, opts Options) (*Result, error) {
	rt := &runtime{snap: g.SnapshotAt(t), prog: prog, states: make([]any, g.NumVertices())}
	cfg := engine.Config{
		NumWorkers:    opts.NumWorkers,
		MaxSupersteps: opts.MaxSupersteps,
		ActivateAll:   opts.ActivateAll,
		PayloadCodec:  opts.PayloadCodec,
		Master:        opts.Master,
	}
	if opts.Combine != nil {
		cfg.Combiner = engine.CombinerFunc(opts.Combine)
	}
	eng, err := engine.New(g.NumVertices(), rt, cfg)
	if err != nil {
		return nil, err
	}
	for name, agg := range opts.Aggregators {
		eng.RegisterAggregator(name, agg)
	}
	m, err := eng.Run()
	if err != nil {
		return nil, err
	}
	return &Result{Metrics: m, states: rt.states}, nil
}
