package vcm

import (
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// pathGraph: 0→1→2 alive [0,6), plus vertex 3 alive only [0,2).
func pathGraph(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(4, 2)
	b.AddVertex(0, ival.New(0, 6))
	b.AddVertex(1, ival.New(0, 6))
	b.AddVertex(2, ival.New(0, 6))
	b.AddVertex(3, ival.New(0, 2))
	b.AddEdge(0, 0, 1, ival.New(0, 6))
	b.AddEdge(1, 1, 2, ival.New(0, 6))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hopProgram floods hop counts from vertex 0.
type hopProgram struct{}

func (hopProgram) Init(ctx Ctx) {
	if ctx.Vertex() == 0 {
		ctx.SetState(int64(0))
		ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, int64(1)) })
		return
	}
	ctx.SetState(int64(-1))
}

func (hopProgram) Compute(ctx Ctx, msgs []any) {
	if ctx.State().(int64) != -1 {
		return
	}
	best := int64(1 << 30)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	ctx.SetState(best)
	ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, best+1) })
}

func TestRunSnapshotFloods(t *testing.T) {
	g := pathGraph(t)
	r, err := RunSnapshot(g, 1, hopProgram{}, Options{NumWorkers: 2, PayloadCodec: codec.Int64{}})
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	for v, want := range []int64{0, 1, 2} {
		if got := r.State(v).(int64); got != want {
			t.Errorf("state[%d] = %d, want %d", v, got, want)
		}
	}
	// Vertex 3 is active at t=1 but isolated.
	if got := r.State(3).(int64); got != -1 {
		t.Errorf("state[3] = %d, want -1", got)
	}
	if r.Metrics.ComputeCalls < 4 {
		t.Errorf("compute calls = %d", r.Metrics.ComputeCalls)
	}
}

func TestRunSnapshotSkipsDeadVertices(t *testing.T) {
	g := pathGraph(t)
	r, err := RunSnapshot(g, 4, hopProgram{}, Options{NumWorkers: 1})
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	if r.State(3) != nil {
		t.Errorf("dead vertex must keep a nil state, got %v", r.State(3))
	}
	if got := r.State(2).(int64); got != 2 {
		t.Errorf("state[2] = %d, want 2", got)
	}
}

// degProgram records snapshot-scoped context values.
type degProgram struct {
	deg  int
	time ival.Time
	n    int
	id   tgraph.VertexID
	ins  int
}

func (p *degProgram) Init(ctx Ctx) {
	if ctx.Vertex() != 1 {
		return
	}
	p.deg = ctx.OutDegree()
	p.time = ctx.Time()
	p.n = ctx.NumVertices()
	p.id = ctx.ID()
	ctx.InEdgesSimple(func(src int) { p.ins++ })
	ctx.OutEdges(func(e *tgraph.Edge, dst int) {
		if e == nil || dst != 2 {
			p.deg = -99
		}
	})
}

func (p *degProgram) Compute(ctx Ctx, msgs []any) {}

func TestSnapshotContextAccessors(t *testing.T) {
	g := pathGraph(t)
	p := &degProgram{}
	if _, err := RunSnapshot(g, 3, p, Options{NumWorkers: 1}); err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	if p.deg != 1 || p.ins != 1 || p.time != 3 || p.n != 4 || p.id != 1 {
		t.Errorf("context accessors wrong: %+v", p)
	}
}
