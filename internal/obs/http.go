package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar bridge: expvar.Publish panics on duplicate names, so the
// registry behind the published Func is swappable and published once per
// process. The most recently served registry wins, which is what a CLI
// run wants.
var (
	publishOnce  sync.Once
	publishedReg atomic.Pointer[Registry]
)

func publish(reg *Registry) {
	publishedReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("graphite", expvar.Func(func() any {
			if r := publishedReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// DebugServer is a running /debug endpoint. Close stops it.
type DebugServer struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// DebugMux returns the debug surface as an embeddable mux: /debug/vars
// (expvar JSON, registry published under "graphite"), /debug/pprof/...
// (profiles, heap, goroutines), and /metrics (Prometheus text exposition of
// the registry). The serving layer mounts it next to its API; ServeDebug
// serves it standalone for the CLIs. Callers that mount it under a "/debug/"
// prefix route /metrics separately via MetricsHandler.
func DebugMux(reg *Registry) *http.ServeMux {
	if reg != nil {
		publish(reg)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug exposes DebugMux over HTTP on addr. It returns once the
// listener is bound; the server runs until Close. Opt-in: nothing listens
// unless a CLI was started with -pprof.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := DebugMux(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	s := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		ln:   ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Close stops the server.
func (s *DebugServer) Close() error { return s.srv.Close() }
