package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runTransitSSSP runs temporal SSSP over the paper's transit example with a
// fixed worker count and a recorder attached — everything about the run is
// deterministic except wall-clock timings.
func runTransitSSSP(t *testing.T) (*core.Result, *obs.Recorder) {
	t.Helper()
	g := tgraph.TransitExample()
	prog, opts, err := algorithms.New(g, "sssp", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatalf("algorithms.New: %v", err)
	}
	opts.NumWorkers = 2
	rec := &obs.Recorder{}
	opts.Tracer = rec
	res, err := core.Run(g, prog, opts)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	return res, rec
}

// timingKeys are the JSONL fields that vary run to run; the golden test
// zeroes them so the comparison pins schema, ordering and every
// deterministic quantity.
var timingKeys = []string{"ns", "compute_ns", "messaging_ns", "barrier_ns", "makespan_ns"}

func normalizeLine(t *testing.T, line []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("unmarshal trace line %s: %v", line, err)
	}
	for _, k := range timingKeys {
		if _, ok := m[k]; ok {
			m[k] = 0
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-marshal trace line: %v", err)
	}
	return out
}

// TestTransitSSSPTraceGolden locks the JSONL trace of the deterministic
// transit SSSP run against a golden file (regenerate with `go test
// ./internal/obs -run Golden -update`). Timing fields are normalized to 0;
// event order, counts, byte sizes, warp stats and activity are exact.
func TestTransitSSSPTraceGolden(t *testing.T) {
	_, rec := runTransitSSSP(t)
	var buf bytes.Buffer
	for _, e := range rec.Events() {
		line, err := obs.MarshalEvent(e)
		if err != nil {
			t.Fatalf("MarshalEvent: %v", err)
		}
		buf.Write(normalizeLine(t, line))
		buf.WriteByte('\n')
	}

	golden := filepath.Join("testdata", "transit_sssp.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if bytes.Equal(want, buf.Bytes()) {
		return
	}
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("trace line %d:\n  got:  %s\n  want: %s", i+1, g, w)
		}
	}
}

// TestTransitSSSPTraceReconciles is the acceptance check that the trace is
// the exact per-superstep decomposition of the final metrics: ValidateTrace
// sums the superstep_end events against the trace's own run_end, and the
// run_end in turn must equal the Metrics the run returned.
func TestTransitSSSPTraceReconciles(t *testing.T) {
	res, rec := runTransitSSSP(t)
	events := rec.Events()
	if err := obs.ValidateTrace(events); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	end, ok := events[len(events)-1].(obs.RunEnd)
	if !ok {
		t.Fatalf("last event is %s, want run_end", events[len(events)-1].Kind())
	}
	m := res.Metrics
	checks := []struct {
		name      string
		got, want int64
	}{
		{"supersteps", int64(end.Supersteps), int64(m.Supersteps)},
		{"compute_calls", end.ComputeCalls, m.ComputeCalls},
		{"scatter_calls", end.ScatterCalls, m.ScatterCalls},
		{"messages", end.Messages, m.Messages},
		{"message_bytes", end.MessageBytes, m.MessageBytes},
		{"checkpoints", int64(end.Checkpoints), int64(m.Checkpoints)},
		{"recoveries", int64(end.Recoveries), int64(m.Recoveries)},
		{"compute_ns", end.ComputeNS, int64(m.ComputePlusTime)},
		{"messaging_ns", end.MessagingNS, int64(m.MessagingTime)},
		{"barrier_ns", end.BarrierNS, int64(m.BarrierTime)},
		{"makespan_ns", end.MakespanNS, int64(m.Makespan)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("run_end %s = %d, engine metrics say %d", c.name, c.got, c.want)
		}
	}

	// The warp stream must cover every superstep and stay internally
	// consistent with the engine's message counts.
	var msgsIn int64
	for _, e := range events {
		if w, ok := e.(obs.WarpStats); ok {
			msgsIn += w.MsgsIn
			if w.UnitFraction < 0 || w.UnitFraction > 1 {
				t.Errorf("superstep %d unit fraction %v out of range", w.Superstep, w.UnitFraction)
			}
		}
	}
	if msgsIn > m.Messages {
		t.Errorf("warp saw %d effective messages, engine sent only %d", msgsIn, m.Messages)
	}

	// The registry the run published into (none was passed, so re-run with
	// one) exposes the same totals under the canonical names.
	g := tgraph.TransitExample()
	prog, opts, err := algorithms.New(g, "sssp", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatalf("algorithms.New: %v", err)
	}
	opts.NumWorkers = 2
	reg := obs.NewRegistry()
	opts.Registry = reg
	res2, err := core.Run(g, prog, opts)
	if err != nil {
		t.Fatalf("core.Run with registry: %v", err)
	}
	if got := reg.Counter(obs.CMessages).Load(); got != res2.Metrics.Messages {
		t.Errorf("registry %s = %d, metrics say %d", obs.CMessages, got, res2.Metrics.Messages)
	}
	classTotal := reg.Counter(obs.CIntervalBytesUnit).Load() +
		reg.Counter(obs.CIntervalBytesUnbounded).Load() +
		reg.Counter(obs.CIntervalBytesGeneral).Load() +
		reg.Counter(obs.CIntervalBytesEmpty).Load()
	if classTotal <= 0 || classTotal > res2.Metrics.MessageBytes {
		t.Errorf("interval class bytes = %d, want in (0, %d]", classTotal, res2.Metrics.MessageBytes)
	}
	if got := reg.Counter(obs.CWarpCalls).Load(); got != res2.Stats.WarpCalls {
		t.Errorf("registry %s = %d, stats say %d", obs.CWarpCalls, got, res2.Stats.WarpCalls)
	}
	if got := reg.Histogram(obs.HSuperstepComputeNS).Count(); got != int64(res2.Metrics.Supersteps) {
		t.Errorf("compute histogram observed %d supersteps, want %d", got, res2.Metrics.Supersteps)
	}
}

// TestJSONLTraceFileRoundTrip drives the same run through the file-backed
// tracer and the parser — what graphite-run -trace + graphite-trace do.
func TestJSONLTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	jt, err := obs.CreateJSONLTrace(path)
	if err != nil {
		t.Fatalf("CreateJSONLTrace: %v", err)
	}
	g := tgraph.TransitExample()
	prog, opts, err := algorithms.New(g, "sssp", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatalf("algorithms.New: %v", err)
	}
	opts.NumWorkers = 2
	opts.Tracer = jt
	if _, err := core.Run(g, prog, opts); err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	if err := jt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if err := obs.ValidateTrace(events); err != nil {
		t.Fatalf("file trace does not validate: %v", err)
	}
	s, err := obs.Summarize(events)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	var sb strings.Builder
	s.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Step", "makespan=", fmt.Sprintf("%d vertices", g.NumVertices())} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered summary missing %q:\n%s", want, out)
		}
	}
}
