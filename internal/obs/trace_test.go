package obs

import (
	"strings"
	"sync"
	"testing"
)

// fullStream is a synthetic fault-free trace of two supersteps whose sums
// reconcile with its run_end — the shape the engine emits.
func fullStream() []Event {
	return []Event{
		RunStart{Vertices: 4, Workers: 2},
		SuperstepStart{Superstep: 1, Active: 4},
		WorkerPhase{Superstep: 1, Worker: 0, Phase: "compute", NS: 10, ComputeCalls: 2, SentMsgs: 3, SentBytes: 30},
		WorkerPhase{Superstep: 1, Worker: 1, Phase: "compute", NS: 12, ComputeCalls: 2, SentMsgs: 1, SentBytes: 10},
		SuperstepEnd{Superstep: 1, ComputeNS: 12, MessagingNS: 5, BarrierNS: 2,
			ComputeCalls: 4, Messages: 4, MessageBytes: 40, Delivered: 4, Active: 3},
		SuperstepStart{Superstep: 2, Active: 3},
		SuperstepEnd{Superstep: 2, ComputeNS: 8, MessagingNS: 3, BarrierNS: 1,
			ComputeCalls: 3, Active: 0},
		RunEnd{Supersteps: 2, ComputeCalls: 7, Messages: 4, MessageBytes: 40,
			ComputeNS: 20, MessagingNS: 8, BarrierNS: 3, MakespanNS: 40, Halted: true},
	}
}

func TestRecorderAndMultiTracer(t *testing.T) {
	var a, b Recorder
	mt := MultiTracer{&a, &b}
	for _, e := range fullStream() {
		mt.Emit(e)
	}
	if a.Count("superstep_end") != 2 || b.Count("superstep_end") != 2 {
		t.Errorf("fan-out lost events: a=%d b=%d", a.Count("superstep_end"), b.Count("superstep_end"))
	}
	ev := a.Events()
	if len(ev) != len(fullStream()) {
		t.Fatalf("recorded %d events, want %d", len(ev), len(fullStream()))
	}
	// Events() hands out a copy.
	ev[0] = RunEnd{}
	if _, ok := a.Events()[0].(RunStart); !ok {
		t.Error("Events() exposed internal storage")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(SendRetry{Superstep: i})
			}
		}()
	}
	wg.Wait()
	if got := r.Count("send_retry"); got != 8*500 {
		t.Errorf("recorded %d events, want %d", got, 8*500)
	}
}

// TestMarshalEventShape pins the flat JSONL schema: type tag first, event
// fields spliced into the same object.
func TestMarshalEventShape(t *testing.T) {
	line, err := MarshalEvent(SuperstepStart{Superstep: 3, Active: 7})
	if err != nil {
		t.Fatalf("MarshalEvent: %v", err)
	}
	want := `{"type":"superstep_start","superstep":3,"active":7}`
	if string(line) != want {
		t.Errorf("line = %s, want %s", line, want)
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	events := fullStream()
	events = append(events, // exercise every remaining event type
		WarpStats{Superstep: 1, WarpCalls: 2, MsgsIn: 4, UnitMsgsIn: 3, UnitFraction: 0.75},
		Checkpoint{Superstep: 2, Index: 1},
		Recovery{Failed: 2, ResumeAt: 1, Attempt: 1, Reason: "panic", Reset: true},
		SendRetry{Superstep: 1, Src: 0, Dst: 1, Attempt: 1, Error: "drop"},
	)
	var sb strings.Builder
	jt := NewJSONLTracer(&sb)
	for _, e := range events {
		jt.Emit(e)
	}
	if err := jt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	back, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d: %#v != %#v", i, back[i], events[i])
		}
	}
}

func TestParseTraceRejectsUnknownType(t *testing.T) {
	_, err := ParseTrace(strings.NewReader(`{"type":"wormhole"}`))
	if err == nil || !strings.Contains(err.Error(), "unknown event type") {
		t.Errorf("unknown type error = %v", err)
	}
}

func TestValidateTraceAcceptsFaultFree(t *testing.T) {
	if err := ValidateTrace(fullStream()); err != nil {
		t.Errorf("fault-free stream rejected: %v", err)
	}
}

// TestValidateTraceReplayAware: a rollback-and-replay trace must reconcile
// using only the surviving execution of each superstep — the replayed
// superstep's first (abandoned) totals are discarded, exactly mirroring the
// engine's metric rewind.
func TestValidateTraceReplayAware(t *testing.T) {
	events := []Event{
		RunStart{Vertices: 4, Workers: 2, Checkpoints: true},
		Checkpoint{Superstep: 1, Index: 1},
		SuperstepStart{Superstep: 1, Active: 4},
		SuperstepEnd{Superstep: 1, ComputeCalls: 4, Messages: 4},
		Checkpoint{Superstep: 2, Index: 2},
		SuperstepStart{Superstep: 2, Active: 4},
		SuperstepEnd{Superstep: 2, ComputeCalls: 9, Messages: 9}, // abandoned
		Recovery{Failed: 3, ResumeAt: 2, Attempt: 1, Reason: "panic"},
		SuperstepStart{Superstep: 2, Active: 4},
		SuperstepEnd{Superstep: 2, ComputeCalls: 3, Messages: 3}, // survives
		RunEnd{Supersteps: 2, ComputeCalls: 7, Messages: 7, Checkpoints: 2, Recoveries: 1},
	}
	if err := ValidateTrace(events); err != nil {
		t.Errorf("replay-aware validation failed: %v", err)
	}
}

func TestValidateTraceRejections(t *testing.T) {
	base := fullStream()
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"empty", nil, "empty trace"},
		{"no run_start", base[1:], "must open with run_start"},
		{"no run_end", base[:len(base)-1], "must close with run_end"},
		{"missing superstep", func() []Event {
			ev := append([]Event(nil), base...)
			// Drop superstep 1's end: count check fires first.
			return append(ev[:4], ev[5:]...)
		}(), "surviving supersteps"},
		{"end without start", func() []Event {
			ev := append([]Event(nil), base...)
			return append(ev[:5], ev[6:]...) // drop superstep 2's start
		}(), "without a superstep_start"},
		{"bad totals", func() []Event {
			ev := append([]Event(nil), base...)
			end := ev[len(ev)-1].(RunEnd)
			end.Messages += 5
			ev[len(ev)-1] = end
			return ev
		}(), "does not reconcile"},
	}
	for _, tc := range cases {
		err := ValidateTrace(tc.events)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestSplitRuns: a concatenated multi-run stream (what graphite-bench
// writes) splits at each run_start, and every piece validates on its own.
func TestSplitRuns(t *testing.T) {
	one := fullStream()
	three := append(append(append([]Event{}, one...), one...), one...)
	runs := SplitRuns(three)
	if len(runs) != 3 {
		t.Fatalf("SplitRuns found %d runs, want 3", len(runs))
	}
	for i, run := range runs {
		if len(run) != len(one) {
			t.Errorf("run %d has %d events, want %d", i, len(run), len(one))
		}
		if err := ValidateTrace(run); err != nil {
			t.Errorf("run %d does not validate: %v", i, err)
		}
	}
	if got := SplitRuns(nil); got != nil {
		t.Errorf("SplitRuns(nil) = %v, want nil", got)
	}
	// Events before the first run_start are dropped.
	if got := SplitRuns([]Event{SuperstepStart{Superstep: 1}}); got != nil {
		t.Errorf("leading orphan events should be dropped, got %v", got)
	}
}

// TestSummarizeReplayOverwrite: a replayed superstep appears once in the
// summary, with the surviving execution's metrics and a recovery count.
func TestSummarizeReplayOverwrite(t *testing.T) {
	events := []Event{
		RunStart{Vertices: 4, Workers: 2},
		SuperstepStart{Superstep: 1, Active: 4},
		SuperstepEnd{Superstep: 1, ComputeCalls: 9, Messages: 9}, // abandoned
		Recovery{Failed: 1, ResumeAt: 1, Attempt: 1, Reason: "panic"},
		SuperstepStart{Superstep: 1, Active: 4},
		SuperstepEnd{Superstep: 1, ComputeCalls: 4, Messages: 4, Active: 0},
		RunEnd{Supersteps: 1, ComputeCalls: 4, Messages: 4, Recoveries: 1},
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if len(s.Rows) != 1 {
		t.Fatalf("summary has %d rows, want 1", len(s.Rows))
	}
	r := s.Rows[0]
	if r.ComputeCalls != 4 || r.Messages != 4 {
		t.Errorf("row kept abandoned metrics: %+v", r)
	}
	if r.Recoveries != 1 {
		t.Errorf("row recoveries = %d, want 1", r.Recoveries)
	}
	var sb strings.Builder
	s.Render(&sb)
	if !strings.Contains(sb.String(), "recover×1") {
		t.Errorf("render lost the recovery marker:\n%s", sb.String())
	}
}
