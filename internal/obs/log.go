package obs

import (
	"io"
	"log/slog"
	"os"
)

// NewLogger returns the stack's structured logger: text-format slog on w,
// at Info level, or Debug when verbose. All diagnostics go through it;
// stdout stays reserved for actual program output (tables, vertex states,
// rendered traces).
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	lvl := slog.LevelInfo
	if verbose {
		lvl = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lvl}))
}

// CLILogger is the shared CLI setup: a NewLogger on stderr tagged with the
// command name, installed as the slog default so library code logging via
// the default logger is uniform across all the graphite-* commands.
func CLILogger(cmd string, verbose bool) *slog.Logger {
	l := NewLogger(os.Stderr, verbose).With("cmd", cmd)
	slog.SetDefault(l)
	return l
}
