// Package obs is the observability layer of the stack: a dependency-free
// metrics registry (counters, gauges, fixed-bucket duration histograms), a
// Tracer contract receiving typed per-superstep events from the BSP engine
// and the ICM runtime, sinks for both (a JSONL trace writer, an expvar +
// pprof debug endpoint), and the shared slog setup the CLIs use.
//
// The paper's entire evaluation (Sec. VII) is built from per-superstep
// instrumentation — compute+/messaging/barrier splits, compute-call and
// message counts, encoded byte sizes — so the same quantities are what the
// registry names and the trace events carry. engine.Metrics is a view over
// the registry; a JSONL trace is the per-superstep decomposition of the same
// totals, and the two reconcile exactly on a fault-free run.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical registry names. The engine and the ICM runtime publish under
// these; sinks and tests address them by name.
const (
	// Engine totals (the Metrics view reads these).
	CSupersteps    = "engine.supersteps"
	CComputeCalls  = "engine.compute_calls"
	CScatterCalls  = "engine.scatter_calls"
	CMessages      = "engine.messages"
	CMessageBytes  = "engine.message_bytes"
	CCheckpoints   = "engine.checkpoints"
	CRecoveries    = "engine.recoveries"
	CComputePlusNS = "engine.compute_plus_ns"
	CMessagingNS   = "engine.messaging_ns"
	CBarrierNS     = "engine.barrier_ns"
	CMakespanNS    = "engine.makespan_ns"
	CSendRetries   = "engine.send_retries"

	// Per-superstep duration distributions.
	HSuperstepComputeNS   = "engine.superstep.compute_ns"
	HSuperstepMessagingNS = "engine.superstep.messaging_ns"
	HSuperstepBarrierNS   = "engine.superstep.barrier_ns"

	// Interval-encoding bytes by codec class (Sec. VI "Interval Messages").
	CIntervalBytesUnit      = "codec.interval_bytes.unit"
	CIntervalBytesUnbounded = "codec.interval_bytes.unbounded"
	CIntervalBytesGeneral   = "codec.interval_bytes.general"
	CIntervalBytesEmpty     = "codec.interval_bytes.empty"

	// Pooled hot-path buffers (engine message arena + codec batch slabs):
	// cumulative pool hits/misses and the capacity in bytes served by hits
	// instead of fresh allocations. Gauges, refreshed at every barrier.
	GPoolHits    = "engine.pool_hits"
	GPoolMisses  = "engine.pool_misses"
	GBytesReused = "engine.bytes_reused"

	// Scheduler: chunks executed on behalf of another worker (counter), the
	// dense-frontier size after the latest delivery barrier, and the latest
	// superstep's compute-time imbalance across workers — max/mean worker
	// compute time in thousandths (1000 = perfectly balanced).
	CSteals                = "engine.steals"
	GActiveVertices        = "engine.active_vertices"
	GComputeImbalanceMilli = "engine.compute_imbalance_milli"

	// ICM runtime totals.
	CWarpCalls       = "icm.warp_calls"
	CWarpSuppressed  = "icm.warp_suppressed"
	CStateUpdates    = "icm.state_updates"
	CActiveIntervals = "icm.active_intervals"
	GMaxPartitions   = "icm.max_partitions"

	// Cluster runtime (coordinator-side): live worker count, current epoch
	// (bumped on every recovery), distributed recoveries completed, and the
	// supersteps re-executed because of rollbacks.
	GClusterWorkers            = "cluster.workers"
	GClusterEpoch              = "cluster.epoch"
	CClusterRecoveries         = "cluster.recoveries"
	CClusterReplayedSupersteps = "cluster.replayed_supersteps"

	// Heartbeat-lease health (coordinator-side): the tightest remaining
	// lease across live workers in milliseconds (impending worker-loss shows
	// up here before the WorkerLost event fires) and how many heartbeat
	// intervals of silence the quietest worker has accumulated.
	GClusterLeaseRemainingMS = "cluster.lease_remaining_ms"
	GClusterMissedHeartbeats = "cluster.missed_heartbeats"

	// Per-superstep straggler attribution (coordinator-side): the slowest
	// shard's compute and barrier-wait time distributions, the latest
	// superstep's compute skew (max/mean across shards in thousandths), the
	// shard that was slowest last superstep, and the cumulative bytes and
	// time the coordinator spent relaying data batches between workers.
	HClusterComputeNS  = "cluster.superstep.compute_ns"
	HClusterWaitNS     = "cluster.superstep.wait_ns"
	GClusterSkewMilli  = "cluster.step_skew_milli"
	GClusterSlowest    = "cluster.slowest_shard"
	CClusterRelayBytes = "cluster.relay_bytes"
	CClusterRelayNS    = "cluster.relay_ns"
	// Direct data plane: cumulative batch bytes shipped worker-to-worker
	// over the mesh (bypassing the coordinator entirely) and the cumulative
	// worker time spent writing them. In direct mode the relay counters sit
	// at ~0 and these carry the data volume; in relay mode the reverse.
	CClusterDirectBytes = "cluster.data_direct_bytes"
	CClusterDirectNS    = "cluster.data_direct_ns"
	// GClusterShardComputeNS is a labeled family (one series per shard via
	// WithLabels(..., "shard", n)): the last superstep's compute time per
	// shard, the straggler profile a dashboard plots directly.
	GClusterShardComputeNS = "cluster.shard_compute_ns"
)

// Counter is a monotonic (except Store, used by checkpoint rollback) int64
// metric, safe for concurrent use. The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Store overwrites the counter; the engine's rollback path rewinds totals
// to a checkpoint with it.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a point-in-time int64 metric, safe for concurrent use. The zero
// value is ready.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultDurationBuckets are the histogram bucket upper bounds used when a
// histogram is created without explicit bounds: exponential from 10µs to
// ~40s, wide enough for a superstep phase at any of the bench scales.
var DefaultDurationBuckets = []time.Duration{
	10 * time.Microsecond, 40 * time.Microsecond, 160 * time.Microsecond,
	640 * time.Microsecond, 2560 * time.Microsecond, 10 * time.Millisecond,
	41 * time.Millisecond, 164 * time.Millisecond, 655 * time.Millisecond,
	2621 * time.Millisecond, 10486 * time.Millisecond, 41943 * time.Millisecond,
}

// Histogram is a fixed-bucket duration histogram, safe for concurrent use.
// An observation lands in the first bucket whose upper bound is >= the
// value (inclusive, Prometheus "le" semantics); values above every bound
// land in the implicit overflow bucket. The zero value is ready and records
// count and sum only.
type Histogram struct {
	bounds []int64 // upper bounds in nanoseconds, ascending
	counts []atomic.Int64
	over   atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (sorted ascending; nil means DefaultDurationBuckets).
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultDurationBuckets
	}
	h := &Histogram{
		bounds: make([]int64, len(bounds)),
		counts: make([]atomic.Int64, len(bounds)),
	}
	for i, b := range bounds {
		h.bounds[i] = int64(b)
	}
	sort.Slice(h.bounds, func(a, b int) bool { return h.bounds[a] < h.bounds[b] })
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	h.count.Add(1)
	h.sum.Add(n)
	for i, b := range h.bounds {
		if n <= b {
			h.counts[i].Add(1)
			return
		}
	}
	if h.bounds != nil {
		h.over.Add(1)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistogramBucket is one bucket of a histogram snapshot.
type HistogramBucket struct {
	UpperBound time.Duration `json:"le_ns"`
	Count      int64         `json:"count"`
}

// HistogramSnapshot is a consistent-enough copy of a histogram for export.
type HistogramSnapshot struct {
	Count    int64             `json:"count"`
	SumNS    int64             `json:"sum_ns"`
	Buckets  []HistogramBucket `json:"buckets,omitempty"`
	Overflow int64             `json:"overflow,omitempty"`
}

// BucketInf marks the implicit +Inf bucket in cumulative snapshots.
const BucketInf = time.Duration(math.MaxInt64)

// Cumulative exports the histogram with Prometheus-style cumulative bucket
// counts: each bucket's Count is the number of observations <= UpperBound,
// and the final bucket is the implicit +Inf bucket (UpperBound == BucketInf)
// whose count equals Count(). Reading concurrently with Observe is safe; the
// result is monotone but may lag in-flight observations.
func (h *Histogram) Cumulative() []HistogramBucket {
	out := make([]HistogramBucket, 0, len(h.bounds)+1)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, HistogramBucket{UpperBound: time.Duration(b), Count: cum})
	}
	out = append(out, HistogramBucket{UpperBound: BucketInf, Count: cum + h.over.Load()})
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket that holds the target rank. Observations past the last
// bound report that bound (the histogram cannot resolve the overflow tail).
// An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank && n > 0 {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return time.Duration(float64(lo) + frac*float64(b-lo))
		}
		cum += n
	}
	return time.Duration(h.bounds[len(h.bounds)-1])
}

// Snapshot exports the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNS:    h.sum.Load(),
		Overflow: h.over.Load(),
	}
	for i, b := range h.bounds {
		s.Buckets = append(s.Buckets, HistogramBucket{
			UpperBound: time.Duration(b),
			Count:      h.counts[i].Load(),
		})
	}
	return s
}

// Registry is a named collection of counters, gauges and histograms.
// Lookups get-or-create, so producers and consumers need no registration
// order. The zero value is ready; methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default duration buckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket bounds on first use (nil means DefaultDurationBuckets). Bounds are
// fixed at creation; later callers get the existing histogram.
func (r *Registry) HistogramWith(name string, bounds []time.Duration) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot exports every metric: counters and gauges as int64, histograms
// as HistogramSnapshot. Keys are the registry names; encoding/json renders
// them in sorted order, so dumps are stable.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Load()
	}
	for n, g := range r.gauges {
		out[n] = g.Load()
	}
	for n, h := range r.hists {
		out[n] = h.Snapshot()
	}
	return out
}

// Export is a kind-typed snapshot of a registry, for sinks (the Prometheus
// exposition) that must know whether a value is a counter, a gauge or a
// histogram — Snapshot's map[string]any erases that.
type Export struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]*Histogram
}

// Export snapshots counter and gauge values and captures histogram handles
// by kind. The histogram pointers are live (their buckets keep moving);
// exposition reads them via Cumulative.
func (r *Registry) Export() Export {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ex := Export{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]*Histogram, len(r.hists)),
	}
	for n, c := range r.counters {
		ex.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		ex.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		ex.Histograms[n] = h
	}
	return ex
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
