package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestServeDebug starts the debug endpoint on an ephemeral port and checks
// the registry shows up under /debug/vars and the pprof index answers.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(CMessages).Add(42)
	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		Graphite map[string]any `json:"graphite"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	if got := vars.Graphite[CMessages]; got != float64(42) {
		t.Errorf("graphite.%s = %v, want 42", CMessages, got)
	}

	resp, err = http.Get("http://" + s.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d, want 200", resp.StatusCode)
	}

	// A second endpoint over a different registry must not panic on the
	// expvar re-publish, and /debug/vars must follow the latest registry.
	reg2 := NewRegistry()
	reg2.Counter(CMessages).Add(7)
	s2, err := ServeDebug("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatalf("second ServeDebug: %v", err)
	}
	defer s2.Close()
	resp, err = http.Get("http://" + s2.Addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET second /debug/vars: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshal second /debug/vars: %v", err)
	}
	if got := vars.Graphite[CMessages]; got != float64(7) {
		t.Errorf("after second publish, graphite.%s = %v, want 7", CMessages, got)
	}
}
