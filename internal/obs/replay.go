package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"graphite/internal/stats"
)

// eventTypes maps the JSONL "type" tag to a fresh concrete event. Kept in
// one place so the parser, the validator and the schema docs cannot drift.
func newEventOf(kind string) Event {
	switch kind {
	case "run_start":
		return &RunStart{}
	case "superstep_start":
		return &SuperstepStart{}
	case "worker_phase":
		return &WorkerPhase{}
	case "superstep_end":
		return &SuperstepEnd{}
	case "warp":
		return &WarpStats{}
	case "checkpoint":
		return &Checkpoint{}
	case "recovery":
		return &Recovery{}
	case "send_retry":
		return &SendRetry{}
	case "run_end":
		return &RunEnd{}
	case "worker_join":
		return &WorkerJoin{}
	case "worker_lost":
		return &WorkerLost{}
	case "cluster_recovery":
		return &ClusterRecovery{}
	case "span":
		return &PhaseSpan{}
	case "shard_step":
		return &ShardStep{}
	case "cluster_step":
		return &ClusterStep{}
	case "epoch_publish":
		return &EpochPublish{}
	case "wal_replay":
		return &WALReplay{}
	case "wal_compact":
		return &WALCompact{}
	}
	return nil
}

// deref returns the value an event pointer points at, so parsed events
// compare and switch like emitted ones.
func deref(e Event) Event {
	switch v := e.(type) {
	case *RunStart:
		return *v
	case *SuperstepStart:
		return *v
	case *WorkerPhase:
		return *v
	case *SuperstepEnd:
		return *v
	case *WarpStats:
		return *v
	case *Checkpoint:
		return *v
	case *Recovery:
		return *v
	case *SendRetry:
		return *v
	case *RunEnd:
		return *v
	case *WorkerJoin:
		return *v
	case *WorkerLost:
		return *v
	case *ClusterRecovery:
		return *v
	case *PhaseSpan:
		return *v
	case *ShardStep:
		return *v
	case *ClusterStep:
		return *v
	case *EpochPublish:
		return *v
	case *WALReplay:
		return *v
	case *WALCompact:
		return *v
	}
	return e
}

// ParseTrace reads a JSONL trace back into typed events. Unknown event
// types are an error: the schema is versioned by this package.
func ParseTrace(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		ev := newEventOf(tag.Type)
		if ev == nil {
			return nil, fmt.Errorf("obs: trace line %d: unknown event type %q", lineNo, tag.Type)
		}
		if err := json.Unmarshal(line, ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d (%s): %w", lineNo, tag.Type, err)
		}
		out = append(out, deref(ev))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}

// SplitRuns splits an event stream into per-run slices, one per run_start
// — graphite-bench appends every ICM run to a single trace file, so a
// parsed file may hold many runs. Events before the first run_start are
// dropped (a well-formed trace has none).
func SplitRuns(events []Event) [][]Event {
	var runs [][]Event
	for _, e := range events {
		if _, ok := e.(RunStart); ok {
			runs = append(runs, nil)
		}
		if len(runs) == 0 {
			continue
		}
		runs[len(runs)-1] = append(runs[len(runs)-1], e)
	}
	return runs
}

// SuperstepRow is one superstep of a trace summary: the paper-style
// breakdown row (compute+ / messaging / barrier splits, primitive counts,
// warp behaviour, fault events).
type SuperstepRow struct {
	Superstep    int
	Compute      time.Duration
	Messaging    time.Duration
	Barrier      time.Duration
	ComputeCalls int64
	ScatterCalls int64
	Messages     int64
	MessageBytes int64
	ActiveBefore int
	ActiveAfter  int
	Warp         *WarpStats
	Checkpoint   bool
	Recoveries   int // replays of this superstep that were rolled back
	SendRetries  int
}

// Summary aggregates a trace into per-superstep rows plus the run frame.
// A superstep that was rolled back and replayed appears once, with the
// metrics of its successful execution (matching how the engine's totals
// discard aborted partials) and its Recoveries count.
type Summary struct {
	Start *RunStart
	End   *RunEnd
	Rows  []SuperstepRow
}

// Summarize folds a parsed trace into a Summary.
func Summarize(events []Event) (*Summary, error) {
	s := &Summary{}
	byStep := map[int]*SuperstepRow{}
	row := func(step int) *SuperstepRow {
		r := byStep[step]
		if r == nil {
			r = &SuperstepRow{Superstep: step}
			byStep[step] = r
		}
		return r
	}
	for _, e := range events {
		switch ev := e.(type) {
		case RunStart:
			v := ev
			s.Start = &v
		case RunEnd:
			v := ev
			s.End = &v
		case SuperstepStart:
			row(ev.Superstep).ActiveBefore = ev.Active
		case SuperstepEnd:
			r := row(ev.Superstep)
			r.Compute = time.Duration(ev.ComputeNS)
			r.Messaging = time.Duration(ev.MessagingNS)
			r.Barrier = time.Duration(ev.BarrierNS)
			r.ComputeCalls = ev.ComputeCalls
			r.ScatterCalls = ev.ScatterCalls
			r.Messages = ev.Messages
			r.MessageBytes = ev.MessageBytes
			r.ActiveAfter = ev.Active
		case WarpStats:
			v := ev
			row(ev.Superstep).Warp = &v
		case Checkpoint:
			row(ev.Superstep).Checkpoint = true
		case Recovery:
			row(ev.Failed).Recoveries++
		case SendRetry:
			row(ev.Superstep).SendRetries++
		}
	}
	// Order rows by superstep; the map-backed rows are re-collected here.
	// Replayed supersteps overwrote their metric fields in place, so each
	// row reflects the successful execution, as the engine's totals do.
	for step := 1; len(s.Rows) < len(byStep); step++ {
		if r, ok := byStep[step]; ok {
			s.Rows = append(s.Rows, *r)
		}
		if step > 1<<30 {
			return nil, fmt.Errorf("obs: non-contiguous superstep numbering in trace")
		}
	}
	return s, nil
}

// Render prints the summary as the per-superstep breakdown table.
func (s *Summary) Render(w io.Writer) {
	if s.Start != nil {
		fmt.Fprintf(w, "run: %d vertices, %d workers\n", s.Start.Vertices, s.Start.Workers)
	}
	t := stats.Table{Header: []string{
		"Step", "Compute+", "Messaging", "Barrier", "Calls", "Scatter",
		"Msgs", "Bytes", "Active", "Warp", "Supp", "Unit%", "Events",
	}}
	for _, r := range s.Rows {
		warp, supp, unit := "-", "-", "-"
		if r.Warp != nil {
			warp = fmt.Sprintf("%d", r.Warp.WarpCalls)
			supp = fmt.Sprintf("%d", r.Warp.Suppressed)
			unit = fmt.Sprintf("%.0f%%", 100*r.Warp.UnitFraction)
		}
		events := ""
		if r.Checkpoint {
			events += "ckpt "
		}
		if r.Recoveries > 0 {
			events += fmt.Sprintf("recover×%d ", r.Recoveries)
		}
		if r.SendRetries > 0 {
			events += fmt.Sprintf("retry×%d", r.SendRetries)
		}
		t.Add(r.Superstep,
			r.Compute.Round(time.Microsecond), r.Messaging.Round(time.Microsecond),
			r.Barrier.Round(time.Microsecond), r.ComputeCalls, r.ScatterCalls,
			r.Messages, r.MessageBytes, r.ActiveAfter, warp, supp, unit, events)
	}
	if e := s.End; e != nil {
		t.Add("total",
			time.Duration(e.ComputeNS).Round(time.Microsecond),
			time.Duration(e.MessagingNS).Round(time.Microsecond),
			time.Duration(e.BarrierNS).Round(time.Microsecond),
			e.ComputeCalls, e.ScatterCalls, e.Messages, e.MessageBytes,
			"-", "-", "-", "-",
			fmt.Sprintf("makespan=%v", time.Duration(e.MakespanNS).Round(time.Microsecond)))
	}
	t.Render(w)
}

// ValidateTrace checks a parsed trace against the schema contract: a
// run_start first and a run_end last, exactly one superstep_start and
// superstep_end per executed superstep, and — the reconciliation the
// acceptance tests rely on — per-superstep sums of durations and counters
// exactly equal to the run_end totals.
func ValidateTrace(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("obs: empty trace")
	}
	if _, ok := events[0].(RunStart); !ok {
		return fmt.Errorf("obs: trace must open with run_start, got %s", events[0].Kind())
	}
	end, ok := events[len(events)-1].(RunEnd)
	if !ok {
		return fmt.Errorf("obs: trace must close with run_end, got %s", events[len(events)-1].Kind())
	}
	// Replay semantics: a Recovery{ResumeAt: j} rewinds the engine's totals
	// to the checkpoint before superstep j, and supersteps >= j re-execute
	// and re-emit. Mirror the rewind: drop accumulated per-superstep ends
	// at or past the resume point, keep only each superstep's surviving
	// execution. Checkpoint and recovery counts are never rewound.
	ends := map[int]SuperstepEnd{}
	started := map[int]bool{}
	var checkpoints, recoveries int
	for _, e := range events {
		switch ev := e.(type) {
		case SuperstepStart:
			started[ev.Superstep] = true
		case SuperstepEnd:
			ends[ev.Superstep] = ev
		case Checkpoint:
			checkpoints++
		case Recovery:
			recoveries++
			for step := range ends {
				if step >= ev.ResumeAt {
					delete(ends, step)
				}
			}
		}
	}
	if len(ends) != end.Supersteps {
		return fmt.Errorf("obs: %d surviving supersteps in trace, run_end says %d", len(ends), end.Supersteps)
	}
	var sum RunEnd
	for step := 1; step <= end.Supersteps; step++ {
		ev, ok := ends[step]
		if !ok {
			return fmt.Errorf("obs: superstep %d missing from trace", step)
		}
		if !started[step] {
			return fmt.Errorf("obs: superstep %d ended without a superstep_start", step)
		}
		sum.ComputeCalls += ev.ComputeCalls
		sum.ScatterCalls += ev.ScatterCalls
		sum.Messages += ev.Messages
		sum.MessageBytes += ev.MessageBytes
		sum.ComputeNS += ev.ComputeNS
		sum.MessagingNS += ev.MessagingNS
		sum.BarrierNS += ev.BarrierNS
	}
	sum.Checkpoints, sum.Recoveries = checkpoints, recoveries
	type cmp struct {
		name      string
		got, want int64
	}
	for _, c := range []cmp{
		{"compute_calls", sum.ComputeCalls, end.ComputeCalls},
		{"scatter_calls", sum.ScatterCalls, end.ScatterCalls},
		{"messages", sum.Messages, end.Messages},
		{"message_bytes", sum.MessageBytes, end.MessageBytes},
		{"checkpoints", int64(sum.Checkpoints), int64(end.Checkpoints)},
		{"recoveries", int64(sum.Recoveries), int64(end.Recoveries)},
		{"compute_ns", sum.ComputeNS, end.ComputeNS},
		{"messaging_ns", sum.MessagingNS, end.MessagingNS},
		{"barrier_ns", sum.BarrierNS, end.BarrierNS},
	} {
		if c.got != c.want {
			return fmt.Errorf("obs: trace does not reconcile: sum(%s) = %d, run_end total = %d",
				c.name, c.got, c.want)
		}
	}
	return nil
}
