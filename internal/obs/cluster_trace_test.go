package obs_test

import (
	"strings"
	"testing"

	"graphite/internal/obs"
)

// Synthetic cluster-trace builders: a 2-shard fleet, parameterized per
// superstep by each shard's compute time (wait/deliver derived from it so
// reconciliation has non-trivial numbers to match).

func coordStep(span string, step, epoch int, computes []int64) []obs.Event {
	var evs []obs.Event
	var sumC, sumW int64
	slowest, maxC := 0, int64(-1)
	for s, c := range computes {
		evs = append(evs,
			obs.PhaseSpan{Span: span, Superstep: step, Shard: s, Phase: "compute", NS: c},
			obs.PhaseSpan{Span: span, Superstep: step, Shard: s, Phase: "barrier_wait", NS: c / 2},
			obs.PhaseSpan{Span: span, Superstep: step, Shard: s, Phase: "relay", NS: 10},
		)
		sumC += c
		sumW += c / 2
		if c > maxC {
			maxC, slowest = c, s
		}
	}
	evs = append(evs, obs.ClusterStep{
		Span: span, Superstep: step, Epoch: epoch, WallNS: sumC + sumW,
		SlowestShard: slowest, SkewMilli: maxC * 1000 * int64(len(computes)) / sumC,
		ComputeNS: sumC, WaitNS: sumW, RelayNS: 10 * int64(len(computes)),
	})
	return evs
}

func workerStep(span string, step, shard, epoch int, compute int64) obs.ShardStep {
	return obs.ShardStep{
		Span: span, Superstep: step, Shard: shard, Epoch: epoch,
		ComputeNS: compute, WaitNS: compute / 2, DeliverNS: 5,
	}
}

// cleanCluster builds a fault-free 2-shard, 2-superstep cluster trace set.
func cleanCluster(span string) (coord []obs.Event, workers [][]obs.Event) {
	coord = []obs.Event{obs.RunStart{Vertices: 10, Workers: 2, Span: span}}
	coord = append(coord, coordStep(span, 1, 0, []int64{100, 200})...)
	coord = append(coord, coordStep(span, 2, 0, []int64{300, 150})...)
	coord = append(coord, obs.RunEnd{Supersteps: 2})
	for shard := 0; shard < 2; shard++ {
		w := []obs.Event{obs.RunStart{Vertices: 10, Workers: 2, Span: span}}
		w = append(w,
			workerStep(span, 1, shard, 0, []int64{100, 200}[shard]),
			workerStep(span, 2, shard, 0, []int64{300, 150}[shard]))
		workers = append(workers, w)
	}
	return coord, workers
}

func TestMergeClusterTraceCleanRun(t *testing.T) {
	coord, workers := cleanCluster("span-a")
	ct, err := obs.MergeClusterTrace(coord, workers)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Span != "span-a" || ct.Workers != 2 || ct.Recoveries != 0 {
		t.Errorf("header span=%q workers=%d recoveries=%d, want span-a/2/0", ct.Span, ct.Workers, ct.Recoveries)
	}
	if len(ct.Steps) != 2 {
		t.Fatalf("%d steps, want 2", len(ct.Steps))
	}
	for i, row := range ct.Steps {
		if row.Step.Superstep != i+1 {
			t.Errorf("step %d has superstep %d", i, row.Step.Superstep)
		}
		if len(row.Spans) != 6 || len(row.Shards) != 2 {
			t.Errorf("superstep %d: %d spans, %d shard reports; want 6 and 2", i+1, len(row.Spans), len(row.Shards))
		}
	}
	if ss, ok := ct.Steps[1].Slowest(); !ok || ss.Shard != 0 || ss.ComputeNS != 300 {
		t.Errorf("Slowest() = %+v, %v; want shard 0 / 300ns", ss, ok)
	}
	// The merged timeline splices worker reports immediately before their
	// ClusterStep.
	for i, e := range ct.Events {
		if cs, ok := e.(obs.ClusterStep); ok {
			prev, ok := ct.Events[i-1].(obs.ShardStep)
			if !ok || prev.Superstep != cs.Superstep {
				t.Errorf("superstep %d ClusterStep not preceded by its ShardStep (got %T)", cs.Superstep, ct.Events[i-1])
			}
		}
	}
	var sb strings.Builder
	ct.Render(&sb)
	if !strings.Contains(sb.String(), "span=span-a workers=2 recoveries=0") {
		t.Errorf("render header missing:\n%s", sb.String())
	}
}

// TestMergeClusterTraceReplay: a superstep re-executed after a rollback is
// represented by its surviving (epoch-1) execution; the aborted epoch-0
// reports in the worker traces are tolerated extras.
func TestMergeClusterTraceReplay(t *testing.T) {
	span := "span-r"
	coord := []obs.Event{obs.RunStart{Vertices: 10, Workers: 2, Span: span}}
	coord = append(coord, coordStep(span, 1, 0, []int64{100, 200})...)
	// Superstep 2 first executes at epoch 0... then the coordinator loses a
	// worker before closing it (no ClusterStep), recovers, and replays.
	coord = append(coord, obs.Recovery{Failed: 2, ResumeAt: 2, Attempt: 1, Reason: "worker_lost"})
	coord = append(coord, coordStep(span, 2, 1, []int64{310, 160})...)
	coord = append(coord, obs.RunEnd{Supersteps: 2, Recoveries: 1})

	var workers [][]obs.Event
	for shard := 0; shard < 2; shard++ {
		w := []obs.Event{obs.RunStart{Vertices: 10, Workers: 2, Span: span}}
		w = append(w, workerStep(span, 1, shard, 0, []int64{100, 200}[shard]))
		if shard == 0 {
			// The surviving worker finished the aborted epoch-0 execution.
			w = append(w, workerStep(span, 2, shard, 0, 999))
		}
		w = append(w, workerStep(span, 2, shard, 1, []int64{310, 160}[shard]))
		workers = append(workers, w)
	}
	ct, err := obs.MergeClusterTrace(coord, workers)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", ct.Recoveries)
	}
	if len(ct.Steps) != 2 {
		t.Fatalf("%d steps, want 2", len(ct.Steps))
	}
	row := ct.Steps[1]
	if row.Step.Epoch != 1 || row.Step.ComputeNS != 470 {
		t.Errorf("surviving superstep 2 = %+v, want epoch 1 compute 470", row.Step)
	}
	for _, ss := range row.Shards {
		if ss.Epoch != 1 {
			t.Errorf("superstep 2 matched an epoch-%d report: %+v", ss.Epoch, ss)
		}
	}
}

func TestMergeClusterTraceRejections(t *testing.T) {
	span := "span-x"
	for _, tc := range []struct {
		name string
		mut  func(coord []obs.Event, workers [][]obs.Event) ([]obs.Event, [][]obs.Event)
		want string
	}{
		{"no span", func(c []obs.Event, w [][]obs.Event) ([]obs.Event, [][]obs.Event) {
			c[0] = obs.RunStart{Vertices: 10, Workers: 2} // span dropped
			return c, w
		}, "no run_start with a span id"},
		{"worker span mismatch", func(c []obs.Event, w [][]obs.Event) ([]obs.Event, [][]obs.Event) {
			w[1][0] = obs.RunStart{Vertices: 10, Workers: 2, Span: "other"}
			return c, w
		}, "opens span"},
		{"missing worker report", func(c []obs.Event, w [][]obs.Event) ([]obs.Event, [][]obs.Event) {
			w[1] = w[1][:2] // drop shard 1's superstep-2 report
			return c, w
		}, "no worker trace carries its report"},
		{"compute mismatch", func(c []obs.Event, w [][]obs.Event) ([]obs.Event, [][]obs.Event) {
			ss := w[0][1].(obs.ShardStep)
			ss.ComputeNS++
			w[0][1] = ss
			return c, w
		}, "worker measured compute"},
		{"no attribution", func(c []obs.Event, w [][]obs.Event) ([]obs.Event, [][]obs.Event) {
			return []obs.Event{c[0], c[len(c)-1]}, w
		}, "no cluster_step attribution"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coord, workers := cleanCluster(span)
			coord, workers = tc.mut(coord, workers)
			_, err := obs.MergeClusterTrace(coord, workers)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
