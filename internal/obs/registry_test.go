package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestZeroValuesAreReady: every primitive and the registry itself must work
// from their zero value, since producers never register before use.
func TestZeroValuesAreReady(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("zero-value Counter = %d, want 5", c.Load())
	}
	c.Store(2)
	if c.Load() != 2 {
		t.Errorf("Counter after Store = %d, want 2", c.Load())
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("zero-value Gauge = %d, want 4", g.Load())
	}

	// The zero-value histogram has no buckets: it records count and sum only,
	// and must not count overflow either.
	var h Histogram
	h.Observe(time.Second)
	h.Observe(2 * time.Second)
	if h.Count() != 2 || h.Sum() != 3*time.Second {
		t.Errorf("zero-value Histogram count=%d sum=%v, want 2, 3s", h.Count(), h.Sum())
	}
	s := h.Snapshot()
	if len(s.Buckets) != 0 || s.Overflow != 0 {
		t.Errorf("zero-value Histogram snapshot = %+v, want no buckets, no overflow", s)
	}

	var r Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(9)
	r.Histogram("c").Observe(time.Millisecond)
	if got := r.Counter("a").Load(); got != 1 {
		t.Errorf("zero-value Registry counter = %d, want 1", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-le semantics: a value
// exactly on a bound lands in that bucket, one nanosecond above spills to
// the next, and values beyond every bound count as overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{10, 100, 1000}
	h := NewHistogram(bounds)
	h.Observe(10)   // == bound 0: bucket 0
	h.Observe(11)   // just above: bucket 1
	h.Observe(100)  // == bound 1: bucket 1
	h.Observe(1000) // == bound 2: bucket 2
	h.Observe(1001) // above all: overflow
	h.Observe(0)    // below all: bucket 0

	s := h.Snapshot()
	wantCounts := []int64{2, 2, 1}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket le=%v count = %d, want %d", s.Buckets[i].UpperBound, s.Buckets[i].Count, want)
		}
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	if s.Count != 6 || s.SumNS != 10+11+100+1000+1001 {
		t.Errorf("count=%d sum=%d, want 6, %d", s.Count, s.SumNS, 10+11+100+1000+1001)
	}
}

// TestNewHistogramSortsBounds: unsorted bounds are accepted and sorted, so
// bucketing stays correct regardless of declaration order.
func TestNewHistogramSortsBounds(t *testing.T) {
	h := NewHistogram([]time.Duration{1000, 10, 100})
	h.Observe(50)
	s := h.Snapshot()
	if s.Buckets[0].UpperBound != 10 || s.Buckets[1].Count != 1 {
		t.Errorf("unsorted bounds mishandled: %+v", s.Buckets)
	}
}

// TestRegistryGetOrCreate: repeated lookups return the same handle, and
// HistogramWith only applies bounds on first creation.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter lookups returned different handles")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Error("Gauge lookups returned different handles")
	}
	h1 := r.HistogramWith("h", []time.Duration{5})
	h2 := r.HistogramWith("h", []time.Duration{1, 2, 3})
	if h1 != h2 {
		t.Error("Histogram lookups returned different handles")
	}
	if got := len(h1.Snapshot().Buckets); got != 1 {
		t.Errorf("later bounds overrode the histogram: %d buckets, want 1", got)
	}

	names := r.Names()
	want := []string{"h", "x", "y"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

// TestRegistrySnapshotJSON: the snapshot must be JSON-encodable as-is —
// that is exactly what the expvar endpoint publishes.
func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(CMessages).Add(12)
	r.Gauge(GMaxPartitions).Set(3)
	r.Histogram(HSuperstepComputeNS).Observe(20 * time.Microsecond)

	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if back[CMessages].(float64) != 12 {
		t.Errorf("snapshot[%s] = %v, want 12", CMessages, back[CMessages])
	}
	if _, ok := back[HSuperstepComputeNS].(map[string]any); !ok {
		t.Errorf("snapshot[%s] is %T, want an object", HSuperstepComputeNS, back[HSuperstepComputeNS])
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — the
// interesting assertions are the data-race checks under `go test -race`.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter(CMessages).Inc()
				r.Gauge(GMaxPartitions).Set(int64(i))
				r.Histogram(HSuperstepBarrierNS).Observe(time.Duration(i))
				if i%101 == 0 {
					r.Snapshot()
					r.Names()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(CMessages).Load(); got != goroutines*iters {
		t.Errorf("concurrent counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram(HSuperstepBarrierNS).Count(); got != goroutines*iters {
		t.Errorf("concurrent histogram count = %d, want %d", got, goroutines*iters)
	}
}
