package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONLTracer writes one JSON object per event, flat, with a leading
// "type" discriminator:
//
//	{"type":"superstep_end","superstep":3,"compute_ns":12345,...}
//
// The writer is buffered and mutex-protected (retry events arrive from
// worker goroutines); Close flushes.
type JSONLTracer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLTracer wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	t := &JSONLTracer{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// CreateJSONLTrace creates (truncating) a trace file at path.
func CreateJSONLTrace(path string) (*JSONLTracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace: %w", err)
	}
	return NewJSONLTracer(f), nil
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(e Event) {
	line, err := MarshalEvent(e)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err == nil {
		_, err = t.bw.Write(line)
	}
	if err == nil {
		err = t.bw.WriteByte('\n')
	}
	t.err = err
}

// Close flushes the buffer and closes the underlying writer when it is a
// Closer; it returns the first error seen on the stream.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// LineTracer writes each event as one complete line in a single unbuffered
// write to an O_APPEND file. That makes it crash-safe: a process SIGKILLed
// between events (the cluster chaos harness's specialty) never leaves a
// torn line, and a respawned incarnation appending to the same file yields
// one parseable trace covering every incarnation. Prefer JSONLTracer for
// processes with an orderly shutdown; prefer this for cluster workers.
type LineTracer struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// AppendJSONLTrace opens (creating if needed) path for append and returns a
// crash-safe line-at-a-time tracer over it.
func AppendJSONLTrace(path string) (*LineTracer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open trace for append: %w", err)
	}
	return &LineTracer{f: f}, nil
}

// Emit implements Tracer: one write call per event, line and newline
// together.
func (t *LineTracer) Emit(e Event) {
	line, err := MarshalEvent(e)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err == nil {
		_, err = t.f.Write(append(line, '\n'))
	}
	t.err = err
}

// Close closes the file and returns the first error seen on the stream.
func (t *LineTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.f.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// MarshalEvent renders one event as its flat JSONL line (no trailing
// newline): the event's own fields with "type" spliced in front.
func MarshalEvent(e Event) ([]byte, error) {
	body, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("obs: marshal %s event: %w", e.Kind(), err)
	}
	head := fmt.Appendf(nil, `{"type":%q`, e.Kind())
	if len(body) <= 2 { // "{}" — event with no fields
		return append(head, '}'), nil
	}
	head = append(head, ',')
	return append(head, body[1:]...), nil
}
