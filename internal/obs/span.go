package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// A span ID is a run-scoped correlation token: 16 lowercase hex characters
// minted once per query — by graphite-serve at admission, by the CLIs at
// startup — and carried unchanged through engine.Config, the cluster
// protocol and every trace event a run emits, so one query can be followed
// serve → engine → shard → worker across process boundaries by grepping N
// trace files for one string.

// spanSeq de-duplicates span IDs minted when crypto/rand is unavailable
// (it never is in practice, but observability must not fail a run).
var spanSeq atomic.Int64

// NewSpanID mints a fresh 16-hex-character run-scoped span ID.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", uint64(time.Now().UnixNano())^uint64(spanSeq.Add(1)))
	}
	return hex.EncodeToString(b[:])
}
