package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"graphite/internal/stats"
)

// Merging cluster traces. A cluster run writes N+1 JSONL traces: the
// coordinator's (run lifecycle, per-shard PhaseSpans, per-superstep
// ClusterStep attribution, recoveries) and one per worker process
// (RunStart + per-superstep ShardStep reports, as measured by the worker
// itself). MergeClusterTrace folds them into one causally-ordered timeline
// and cross-checks the two sides: every surviving superstep execution in
// the coordinator trace must be backed by a worker-measured ShardStep with
// the same span ID, epoch and phase timings. That catches mixed-up trace
// files, truncated worker traces and span-propagation bugs — the
// distributed analogue of ValidateTrace's totals reconciliation.

// ClusterStepRow is one superstep of a merged cluster timeline: the
// coordinator's attribution, its per-shard spans, and the worker-side
// reports that back them. Replayed supersteps carry their surviving
// (last) execution.
type ClusterStepRow struct {
	Step   ClusterStep
	Spans  []PhaseSpan // coordinator-synthesized, surviving execution
	Shards []ShardStep // worker-measured, matched by (superstep, shard, epoch)
}

// ClusterTrace is the merged, reconciled view of one cluster run.
type ClusterTrace struct {
	Span    string
	Workers int
	// Events is the coordinator timeline with each matched worker ShardStep
	// spliced in immediately before the ClusterStep it reconciles with.
	Events []Event
	Steps  []ClusterStepRow
	// Recoveries counts coordinator-side recovery events in the timeline.
	Recoveries int
}

type shardStepKey struct {
	superstep, shard, epoch int
}

// MergeClusterTrace merges a coordinator trace with N worker traces into
// one cluster timeline, reconciling worker-measured superstep reports
// against the coordinator's synthesized spans. Worker traces may contain
// extra ShardSteps (executions aborted by a rollback, reports from a worker
// that died before the coordinator closed the superstep); those are
// tolerated. A missing or mismatched report for a surviving execution is an
// error.
func MergeClusterTrace(coord []Event, workers [][]Event) (*ClusterTrace, error) {
	ct := &ClusterTrace{}
	for _, e := range coord {
		if rs, ok := e.(RunStart); ok {
			ct.Span, ct.Workers = rs.Span, rs.Workers
			break
		}
	}
	if ct.Span == "" {
		return nil, fmt.Errorf("obs: coordinator trace has no run_start with a span id")
	}

	// Index worker-side reports. Reports arrive at most once per
	// (superstep, shard, epoch) per worker process, but a replacement worker
	// replays with the same epoch as the survivors, so keep a list and match
	// greedily.
	byKey := map[shardStepKey][]ShardStep{}
	for i, w := range workers {
		for _, e := range w {
			switch ev := e.(type) {
			case RunStart:
				if ev.Span != ct.Span {
					return nil, fmt.Errorf("obs: worker trace %d opens span %q, coordinator run is span %q",
						i, ev.Span, ct.Span)
				}
			case ShardStep:
				if ev.Span != ct.Span {
					return nil, fmt.Errorf("obs: worker trace %d: shard_step superstep %d shard %d carries span %q, want %q",
						i, ev.Superstep, ev.Shard, ev.Span, ct.Span)
				}
				k := shardStepKey{ev.Superstep, ev.Shard, ev.Epoch}
				byKey[k] = append(byKey[k], ev)
			}
		}
	}

	// Walk the coordinator timeline: buffer spans per superstep, close rows
	// at each ClusterStep (replays overwrite, so rows hold the surviving
	// execution), and splice each execution's matched worker reports into
	// the merged event stream just before its attribution record.
	rows := map[int]*ClusterStepRow{}
	pending := map[int][]PhaseSpan{}
	for _, e := range coord {
		switch ev := e.(type) {
		case PhaseSpan:
			pending[ev.Superstep] = append(pending[ev.Superstep], ev)
			ct.Events = append(ct.Events, e)
		case ClusterStep:
			row := &ClusterStepRow{Step: ev, Spans: pending[ev.Superstep]}
			delete(pending, ev.Superstep)
			for _, sp := range row.Spans {
				if sp.Phase != "compute" {
					continue
				}
				k := shardStepKey{ev.Superstep, sp.Shard, ev.Epoch}
				if got := byKey[k]; len(got) > 0 {
					row.Shards = append(row.Shards, got[0])
				}
			}
			sort.Slice(row.Shards, func(a, b int) bool { return row.Shards[a].Shard < row.Shards[b].Shard })
			for _, ss := range row.Shards {
				ct.Events = append(ct.Events, ss)
			}
			ct.Events = append(ct.Events, e)
			rows[ev.Superstep] = row
		case Recovery:
			ct.Recoveries++
			ct.Events = append(ct.Events, e)
		default:
			ct.Events = append(ct.Events, e)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("obs: coordinator trace has no cluster_step attribution records")
	}

	// Reconcile surviving executions: every compute span needs a
	// worker-measured twin with identical timings.
	for step := 1; len(ct.Steps) < len(rows); step++ {
		row, ok := rows[step]
		if !ok {
			return nil, fmt.Errorf("obs: cluster trace superstep %d missing (non-contiguous attribution)", step)
		}
		byShard := map[int]ShardStep{}
		for _, ss := range row.Shards {
			byShard[ss.Shard] = ss
		}
		for _, sp := range row.Spans {
			switch sp.Phase {
			case "compute":
				ss, ok := byShard[sp.Shard]
				if !ok {
					return nil, fmt.Errorf("obs: superstep %d shard %d (epoch %d): no worker trace carries its report",
						step, sp.Shard, row.Step.Epoch)
				}
				if ss.ComputeNS != sp.NS {
					return nil, fmt.Errorf("obs: superstep %d shard %d: worker measured compute %dns, coordinator span says %dns",
						step, sp.Shard, ss.ComputeNS, sp.NS)
				}
			case "barrier_wait":
				if ss, ok := byShard[sp.Shard]; ok && ss.WaitNS != sp.NS {
					return nil, fmt.Errorf("obs: superstep %d shard %d: worker measured barrier wait %dns, coordinator span says %dns",
						step, sp.Shard, ss.WaitNS, sp.NS)
				}
			}
		}
		ct.Steps = append(ct.Steps, *row)
	}
	return ct, nil
}

// Slowest returns the shard attribution row's worker-side report for the
// slowest shard, when present.
func (r *ClusterStepRow) Slowest() (ShardStep, bool) {
	for _, ss := range r.Shards {
		if ss.Shard == r.Step.SlowestShard {
			return ss, true
		}
	}
	return ShardStep{}, false
}

// Render prints the merged cluster timeline as a per-superstep straggler
// attribution table.
func (ct *ClusterTrace) Render(w io.Writer) {
	fmt.Fprintf(w, "cluster run: span=%s workers=%d recoveries=%d\n",
		ct.Span, ct.Workers, ct.Recoveries)
	t := stats.Table{Header: []string{
		"Step", "Wall", "Compute", "Wait", "Relay", "Slowest", "Skew",
	}}
	var wall, compute, wait, relay int64
	for _, row := range ct.Steps {
		s := row.Step
		wall += s.WallNS
		compute += s.ComputeNS
		wait += s.WaitNS
		relay += s.RelayNS
		t.Add(s.Superstep,
			time.Duration(s.WallNS).Round(time.Microsecond),
			time.Duration(s.ComputeNS).Round(time.Microsecond),
			time.Duration(s.WaitNS).Round(time.Microsecond),
			time.Duration(s.RelayNS).Round(time.Microsecond),
			fmt.Sprintf("shard %d", s.SlowestShard),
			fmt.Sprintf("%.2f×", float64(s.SkewMilli)/1000))
	}
	t.Add("total",
		time.Duration(wall).Round(time.Microsecond),
		time.Duration(compute).Round(time.Microsecond),
		time.Duration(wait).Round(time.Microsecond),
		time.Duration(relay).Round(time.Microsecond), "-", "-")
	t.Render(w)
}
