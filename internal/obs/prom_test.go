package obs_test

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphite/internal/obs"
)

// TestDefaultDurationBucketsPinned pins the default histogram boundaries:
// dashboards and recorded BENCH artifacts bake these `le` values in, so a
// drive-by change to the defaults must fail a test, not silently shift every
// exported histogram.
func TestDefaultDurationBucketsPinned(t *testing.T) {
	want := []time.Duration{
		10 * time.Microsecond, 40 * time.Microsecond, 160 * time.Microsecond,
		640 * time.Microsecond, 2560 * time.Microsecond, 10 * time.Millisecond,
		41 * time.Millisecond, 164 * time.Millisecond, 655 * time.Millisecond,
		2621 * time.Millisecond, 10486 * time.Millisecond, 41943 * time.Millisecond,
	}
	if len(obs.DefaultDurationBuckets) != len(want) {
		t.Fatalf("obs.DefaultDurationBuckets has %d bounds, want %d", len(obs.DefaultDurationBuckets), len(want))
	}
	for i, b := range want {
		if obs.DefaultDurationBuckets[i] != b {
			t.Errorf("bound %d = %v, want %v", i, obs.DefaultDurationBuckets[i], b)
		}
	}
}

// TestHistogramCumulative: cumulative counts are monotone, each bucket holds
// everything at or under its bound, and the trailing +Inf bucket equals the
// total observation count (the invariant Prometheus scrapes rely on).
func TestHistogramCumulative(t *testing.T) {
	h := obs.NewHistogram([]time.Duration{10, 100, 1000})
	for _, d := range []time.Duration{5, 10, 50, 100, 500, 5000} {
		h.Observe(d)
	}
	got := h.Cumulative()
	want := []obs.HistogramBucket{
		{UpperBound: 10, Count: 2},
		{UpperBound: 100, Count: 4},
		{UpperBound: 1000, Count: 5},
		{UpperBound: obs.BucketInf, Count: 6},
	}
	if len(got) != len(want) {
		t.Fatalf("Cumulative() has %d buckets, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[len(got)-1].Count != h.Count() {
		t.Errorf("+Inf bucket %d != Count() %d", got[len(got)-1].Count, h.Count())
	}
}

// TestHistogramQuantile pins the interpolation: exact ranks, the empty
// histogram, and the overflow clamp to the last bound.
func TestHistogramQuantile(t *testing.T) {
	h := obs.NewHistogram([]time.Duration{100, 200})
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", h.Quantile(0.5))
	}
	// Four observations in (0,100], four in (100,200]: the median sits at
	// the top of the first bucket, p100 at the top of the second.
	for i := 0; i < 4; i++ {
		h.Observe(50)
		h.Observe(150)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("p50 = %v, want 100 (top of first bucket)", got)
	}
	if got := h.Quantile(1.0); got != 200 {
		t.Errorf("p100 = %v, want 200", got)
	}
	if got := h.Quantile(0.25); got != 50 {
		t.Errorf("p25 = %v, want 50 (midpoint of first bucket)", got)
	}
	h.Observe(99999) // overflow: quantiles can't resolve past the last bound
	if got := h.Quantile(1.0); got != 200 {
		t.Errorf("overflowed p100 = %v, want clamp to 200", got)
	}
}

// goldenRegistry builds the deterministic registry behind the exposition
// golden file: a counter (gets the conventional _total suffix), a counter
// already suffixed (must not double it), a gauge, a labeled gauge family
// including a value that needs escaping, and a histogram with pinned bounds.
func goldenRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("engine.messages").Add(42)
	r.Counter("cluster.relay_bytes_total").Add(7)
	r.Gauge("cluster.slowest_shard").Set(1)
	r.Gauge(obs.WithLabels("cluster.shard_compute_ns", "shard", "0")).Set(1500)
	r.Gauge(obs.WithLabels("cluster.shard_compute_ns", "shard", "1")).Set(2500)
	r.Gauge(obs.WithLabels("serve.inflight", "algo", `we"ird\nam`+"\ne")).Set(3)
	h := r.HistogramWith("engine.superstep.compute_ns", []time.Duration{1000, 1000000})
	h.Observe(500)
	h.Observe(800)
	h.Observe(5000)
	h.Observe(2000000)
	return r
}

// TestWritePrometheusGolden pins the full text exposition — HELP/TYPE
// lines, the graphite_ prefix and name mangling, counter _total suffixing,
// label rendering with escapes, and the histogram _bucket/_sum/_count
// triplet with cumulative counts — against testdata/prom_golden.txt.
// Regenerate with `go test ./internal/obs -run Golden -update`.
func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	obs.WritePrometheus(&sb, goldenRegistry())
	got := sb.String()

	path := filepath.Join("testdata", "prom_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus exposition drifted from golden (run with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Structural spot checks, independent of the golden bytes.
	for _, line := range []string{
		"# TYPE graphite_engine_messages_total counter",
		"graphite_engine_messages_total 42",
		"# TYPE graphite_cluster_relay_bytes_total counter",
		"graphite_cluster_relay_bytes_total 7",
		`graphite_cluster_shard_compute_ns{shard="0"} 1500`,
		`graphite_serve_inflight{algo="we\"ird\\nam\ne"} 3`,
		"# TYPE graphite_engine_superstep_compute_ns histogram",
		`graphite_engine_superstep_compute_ns_bucket{le="1000"} 2`,
		`graphite_engine_superstep_compute_ns_bucket{le="1000000"} 3`,
		`graphite_engine_superstep_compute_ns_bucket{le="+Inf"} 4`,
		"graphite_engine_superstep_compute_ns_sum 2006300",
		"graphite_engine_superstep_compute_ns_count 4",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q", line)
		}
	}
	if strings.Contains(got, "_total_total") {
		t.Error("counter suffix applied twice")
	}
}

// TestMetricsHandler: the /metrics endpoint serves the exposition with the
// 0.0.4 content type, and a nil registry serves an empty (valid) body.
func TestMetricsHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	obs.MetricsHandler(goldenRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentTypeMetrics {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentTypeMetrics)
	}
	if !strings.Contains(rec.Body.String(), "graphite_engine_messages_total 42") {
		t.Errorf("handler body missing metrics:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	obs.MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.Len() != 0 {
		t.Errorf("nil registry served %q, want empty", rec.Body.String())
	}
}
