package obs

import "sync"

// Event is one typed trace record. Concrete events are the structs below;
// Kind returns the stable snake_case tag the JSONL schema uses.
type Event interface {
	Kind() string
}

// Tracer receives the event stream of a run. The engine emits superstep
// lifecycle events from the coordinating goroutine in a deterministic
// order, but retry events fire from worker goroutines, so implementations
// must be safe for concurrent use. A nil Tracer disables tracing with zero
// overhead (no events are constructed).
type Tracer interface {
	Emit(e Event)
}

// RunStart opens a run: the shape of the computation. Span, when set, is
// the run-scoped span ID (NewSpanID) minted by whoever admitted the query;
// every distributed trace of the same run opens with the same span.
type RunStart struct {
	Vertices    int    `json:"vertices"`
	Workers     int    `json:"workers"`
	Checkpoints bool   `json:"checkpoints,omitempty"` // checkpointing enabled
	Span        string `json:"span,omitempty"`
}

// Kind implements Event.
func (RunStart) Kind() string { return "run_start" }

// SuperstepStart opens one superstep, before the compute phase.
type SuperstepStart struct {
	Superstep int `json:"superstep"`
	Active    int `json:"active"` // vertices entering the compute phase
}

// Kind implements Event.
func (SuperstepStart) Kind() string { return "superstep_start" }

// WorkerPhase is one worker's share of one phase of a superstep: "compute"
// (user logic + message emission) or "exchange" (delivery; over a real
// transport the send half is reported as "ship" and the receive half as
// "exchange"). Counter fields carry the phase's deltas for that worker.
type WorkerPhase struct {
	Superstep    int    `json:"superstep"`
	Worker       int    `json:"worker"`
	Phase        string `json:"phase"`
	NS           int64  `json:"ns"`
	ComputeCalls int64  `json:"compute_calls,omitempty"`
	ScatterCalls int64  `json:"scatter_calls,omitempty"`
	SentMsgs     int64  `json:"sent_msgs,omitempty"`
	SentBytes    int64  `json:"sent_bytes,omitempty"`
	Delivered    int64  `json:"delivered,omitempty"`
	// StealNS is the part of a compute phase this worker spent idle at the
	// steal barrier (phase wall time minus chunk execution time); Steals is
	// how many chunks it executed on behalf of other workers. Both are zero
	// — and absent from the JSON — unless work stealing is enabled.
	StealNS int64 `json:"steal_ns,omitempty"`
	Steals  int64 `json:"steals,omitempty"`
}

// Kind implements Event.
func (WorkerPhase) Kind() string { return "worker_phase" }

// IntervalBytes splits interval-encoded bytes by codec class (Sec. VI
// "Interval Messages"): the unit/unbounded flag classes are what produce
// the paper's 59-78% message-size reduction.
type IntervalBytes struct {
	Unit      int64 `json:"unit,omitempty"`
	Unbounded int64 `json:"unbounded,omitempty"`
	General   int64 `json:"general,omitempty"`
	Empty     int64 `json:"empty,omitempty"`
}

// SuperstepEnd closes one superstep at its barrier with the superstep's
// metric deltas — the per-superstep decomposition of engine.Metrics. Sums
// of these fields across a fault-free trace equal the run totals exactly.
type SuperstepEnd struct {
	Superstep    int           `json:"superstep"`
	ComputeNS    int64         `json:"compute_ns"`
	MessagingNS  int64         `json:"messaging_ns"`
	BarrierNS    int64         `json:"barrier_ns"`
	ComputeCalls int64         `json:"compute_calls"`
	ScatterCalls int64         `json:"scatter_calls"`
	Messages     int64         `json:"messages"`
	MessageBytes int64         `json:"message_bytes"`
	Delivered    int64         `json:"delivered"`
	Active       int           `json:"active"` // vertices active after delivery
	Steals       int64         `json:"steals,omitempty"`
	Intervals    IntervalBytes `json:"interval_bytes"`
}

// Kind implements Event.
func (SuperstepEnd) Kind() string { return "superstep_end" }

// WarpStats is the ICM runtime's per-superstep share of the warp operator:
// how many vertices warped vs took the suppressed point path, the message
// group fan-in, and the unit-interval message fraction that feeds the
// suppression heuristic (Sec. VI "Warp Suppression").
type WarpStats struct {
	Superstep    int     `json:"superstep"`
	WarpCalls    int64   `json:"warp_calls"`
	Suppressed   int64   `json:"suppressed"`
	Tuples       int64   `json:"tuples"`        // warp tuples (active vertex intervals)
	MergedGroups int64   `json:"merged_groups"` // tuples grouping >= 2 messages
	MsgsIn       int64   `json:"msgs_in"`       // effective (lifespan-clipped) messages
	UnitMsgsIn   int64   `json:"unit_msgs_in"`  // of which unit-length
	UnitFraction float64 `json:"unit_fraction"`
}

// Kind implements Event.
func (WarpStats) Kind() string { return "warp" }

// Checkpoint records one captured recovery point, taken at the barrier
// before executing Superstep.
type Checkpoint struct {
	Superstep int `json:"superstep"`
	Index     int `json:"index"` // 1-based checkpoint count
}

// Kind implements Event.
func (Checkpoint) Kind() string { return "checkpoint" }

// Recovery records one rollback-and-replay: superstep Failed was abandoned
// and the run resumes from ResumeAt.
type Recovery struct {
	Failed   int    `json:"failed"`
	ResumeAt int    `json:"resume_at"`
	Attempt  int    `json:"attempt"` // 1-based recovery count
	Reason   string `json:"reason"`
	Reset    bool   `json:"reset,omitempty"` // transport reset was required
}

// Kind implements Event.
func (Recovery) Kind() string { return "recovery" }

// SendRetry records one failed Transport.Send attempt that will be (or has
// exhausted being) retried. Emitted from worker goroutines.
type SendRetry struct {
	Superstep int    `json:"superstep"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Attempt   int    `json:"attempt"` // 1-based attempt that failed
	Error     string `json:"error"`
}

// Kind implements Event.
func (SendRetry) Kind() string { return "send_retry" }

// RunEnd closes a run with the final totals — the same quantities as the
// engine.Metrics view, so a trace is self-reconciling.
type RunEnd struct {
	Supersteps   int   `json:"supersteps"`
	ComputeCalls int64 `json:"compute_calls"`
	ScatterCalls int64 `json:"scatter_calls"`
	Messages     int64 `json:"messages"`
	MessageBytes int64 `json:"message_bytes"`
	Checkpoints  int   `json:"checkpoints"`
	Recoveries   int   `json:"recoveries"`
	ComputeNS    int64 `json:"compute_ns"`
	MessagingNS  int64 `json:"messaging_ns"`
	BarrierNS    int64 `json:"barrier_ns"`
	MakespanNS   int64 `json:"makespan_ns"`
	Halted       bool  `json:"halted,omitempty"`
}

// Kind implements Event.
func (RunEnd) Kind() string { return "run_end" }

// WorkerJoin records a worker process registering with the cluster
// coordinator and receiving a shard assignment. Rejoin marks a replacement
// for a lost worker (it restores the shard's state from disk).
type WorkerJoin struct {
	Shard  int    `json:"shard"`
	Addr   string `json:"addr,omitempty"`
	Epoch  int    `json:"epoch"`
	Rejoin bool   `json:"rejoin,omitempty"`
}

// Kind implements Event.
func (WorkerJoin) Kind() string { return "worker_join" }

// WorkerLost records the coordinator detecting a dead worker — a missed
// lease or a broken connection — at the given superstep.
type WorkerLost struct {
	Shard     int    `json:"shard"`
	Superstep int    `json:"superstep"`
	Reason    string `json:"reason"`
}

// Kind implements Event.
func (WorkerLost) Kind() string { return "worker_lost" }

// ClusterRecovery closes one distributed recovery: after losing a worker at
// superstep Failed, the cluster rolled every shard back to checkpoint
// generation Gen, waited for a replacement, and resumed at ResumeAt.
// DetectNS is failure→detection; MTTRNS is detection→resumed (the headline
// recovery metric); RestoredBytes is the checkpoint volume reloaded from
// disk across shards.
type ClusterRecovery struct {
	Epoch         int   `json:"epoch"` // epoch the cluster recovered INTO
	Failed        int   `json:"failed"`
	ResumeAt      int   `json:"resume_at"`
	Gen           int   `json:"gen"`
	DetectNS      int64 `json:"detect_ns"`
	MTTRNS        int64 `json:"mttr_ns"`
	RestoredBytes int64 `json:"restored_bytes"`
}

// Kind implements Event.
func (ClusterRecovery) Kind() string { return "cluster_recovery" }

// PhaseSpan is one shard's share of one phase of a distributed superstep,
// synthesized by the cluster coordinator from worker barrier reports and its
// own relay clock: "compute" (the worker's compute + outbound + ship time),
// "barrier_wait" (the worker idled waiting for peer batches and the step
// commit), "relay" (coordinator time spent forwarding data batches toward
// this shard), and — on the direct data plane — "peer_send" (the shard's
// time writing batches to mesh peers) and "peer_recv" (idle between ship
// and the last direct batch arrival). All spans of a run carry the run's
// span ID, so a cluster timeline is a filter over one string.
type PhaseSpan struct {
	Span      string `json:"span,omitempty"`
	Superstep int    `json:"superstep"`
	Shard     int    `json:"shard"`
	Phase     string `json:"phase"`
	NS        int64  `json:"ns"`
}

// Kind implements Event.
func (PhaseSpan) Kind() string { return "span" }

// ShardStep is one worker's completed superstep as measured by the worker
// itself: the record it piggybacks onto its barrier report and writes to its
// local trace. The coordinator reconciles these against its own synthesized
// PhaseSpans when N worker traces are merged into a cluster timeline.
type ShardStep struct {
	Span         string `json:"span,omitempty"`
	Superstep    int    `json:"superstep"`
	Shard        int    `json:"shard"`
	Epoch        int    `json:"epoch"`
	ComputeNS    int64  `json:"compute_ns"`
	WaitNS       int64  `json:"wait_ns"`
	DeliverNS    int64  `json:"deliver_ns"`
	PeerSendNS   int64  `json:"peer_send_ns,omitempty"`
	PeerRecvNS   int64  `json:"peer_recv_ns,omitempty"`
	ComputeCalls int64  `json:"compute_calls,omitempty"`
	ScatterCalls int64  `json:"scatter_calls,omitempty"`
	SentMsgs     int64  `json:"sent_msgs,omitempty"`
	SentBytes    int64  `json:"sent_bytes,omitempty"`
	Delivered    int64  `json:"delivered,omitempty"`
	Active       int64  `json:"active,omitempty"`
}

// Kind implements Event.
func (ShardStep) Kind() string { return "shard_step" }

// ClusterStep is the coordinator's straggler attribution for one distributed
// superstep: which shard was slowest, how compute skewed across shards
// (max/mean compute time in thousandths; 1000 = perfectly balanced), and the
// fleet-wide compute / barrier-wait / relay split. WallNS is the coordinator
// wall time from step broadcast to the last barrier report.
type ClusterStep struct {
	Span         string `json:"span,omitempty"`
	Superstep    int    `json:"superstep"`
	Epoch        int    `json:"epoch"`
	WallNS       int64  `json:"wall_ns"`
	SlowestShard int    `json:"slowest_shard"`
	SkewMilli    int64  `json:"skew_milli"`
	ComputeNS    int64  `json:"compute_ns"` // sum across shards
	WaitNS       int64  `json:"wait_ns"`    // sum across shards
	RelayNS      int64  `json:"relay_ns"`   // coordinator relay time
}

// Kind implements Event.
func (ClusterStep) Kind() string { return "cluster_step" }

// EpochPublish records one live-graph ingest batch becoming visible: the
// epoch it published, the batch size, the cumulative event count, and the
// shape of the materialized snapshot. WallNS covers WAL append (including
// fsync) through snapshot publication.
type EpochPublish struct {
	Graph    string `json:"graph,omitempty"`
	Epoch    uint64 `json:"epoch"`
	Batch    int    `json:"batch_events"`
	Events   int    `json:"events"` // cumulative since the log began
	LastTime int64  `json:"last_time"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	WallNS   int64  `json:"wall_ns"`
}

// Kind implements Event.
func (EpochPublish) Kind() string { return "epoch_publish" }

// WALReplay records a live graph recovering its state at open: how many
// batches and events were replayed from the write-ahead log, the bytes
// consumed, and whether a torn tail (an append cut short by a crash) was
// truncated. When recovery started from a compacted snapshot,
// FromSnapshot is set and SnapshotEvents counts the events the snapshot
// already covered (Batches/Events then describe only the replayed tail).
type WALReplay struct {
	Graph          string `json:"graph,omitempty"`
	Batches        int    `json:"batches"`
	Events         int    `json:"events"`
	Bytes          int64  `json:"bytes"`
	Truncated      bool   `json:"truncated,omitempty"`
	FromSnapshot   bool   `json:"from_snapshot,omitempty"`
	SnapshotEvents int    `json:"snapshot_events,omitempty"`
	WallNS         int64  `json:"wall_ns"`
}

// Kind implements Event.
func (WALReplay) Kind() string { return "wal_replay" }

// WALCompact records a live graph checkpointing its state: the current
// epoch was written as a mapped snapshot and the write-ahead log was
// rotated to an empty file based at that snapshot. WALBefore/WALAfter are
// the log sizes around the rotation.
type WALCompact struct {
	Graph         string `json:"graph,omitempty"`
	Epoch         uint64 `json:"epoch"`
	Events        int    `json:"events"` // cumulative events covered by the snapshot
	SnapshotBytes int64  `json:"snapshot_bytes"`
	WALBefore     int64  `json:"wal_before"`
	WALAfter      int64  `json:"wal_after"`
	WallNS        int64  `json:"wall_ns"`
}

// Kind implements Event.
func (WALCompact) Kind() string { return "wal_compact" }

// Recorder is a Tracer that keeps every event in memory, for tests and for
// building summaries without a file round-trip.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns how many events of the given kind were recorded.
func (r *Recorder) Count(kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind() == kind {
			n++
		}
	}
	return n
}

// MultiTracer fans every event out to several sinks.
type MultiTracer []Tracer

// Emit implements Tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
