package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), dependency-free. The
// registry's dotted names become `graphite_`-prefixed underscore families:
// engine.supersteps → graphite_engine_supersteps. Counters additionally get
// the conventional `_total` suffix; histograms render as the cumulative
// `_bucket{le="…"}` / `_sum` / `_count` triplet with `le` in nanoseconds
// (our duration families are explicitly `_ns`-suffixed, so the unit is in
// the name, as the convention asks).
//
// Labels ride inside registry names: WithLabels("cluster.shard_compute_ns",
// "shard", "2") returns `cluster.shard_compute_ns{shard=2}`, and because
// registry lookups get-or-create by full name, a labeled series is just
// another registry entry — no registry API change, and series of one family
// aggregate naturally in the exposition. Label values are stored raw and
// escaped (backslash, quote, newline) at render time; `,` and `=` inside
// values are not supported by this encoding.

// ContentTypeMetrics is the Content-Type of the /metrics response.
const ContentTypeMetrics = "text/plain; version=0.0.4; charset=utf-8"

// WithLabels returns the registry metric name for one labeled series of a
// family: the family name with a `{k1=v1,k2=v2}` suffix. kv alternates
// key, value; keys should be valid Prometheus label names.
func WithLabels(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabels splits a registry name into its family and raw label block
// ("" when unlabeled).
func splitLabels(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promName sanitizes a registry family name into a Prometheus metric name:
// graphite_ prefix, dots and every other invalid character to underscores.
func promName(family string) string {
	var b strings.Builder
	b.WriteString("graphite_")
	for i := 0; i < len(family); i++ {
		c := family[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promLabels renders a raw label block (`k1=v1,k2=v2`) as the exposition
// form (`{k1="v1",k2="v2"}`), with extra prepended verbatim (used for the
// histogram `le` label). Returns "" for an empty block with no extra.
func promLabels(raw, extra string) string {
	var parts []string
	if extra != "" {
		parts = append(parts, extra)
	}
	if raw != "" {
		for _, pair := range strings.Split(raw, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				k, v = pair, ""
			}
			// Quote by hand: %q would re-escape what escapeLabelValue already
			// handled and invent \x escapes the exposition format lacks.
			parts = append(parts, k+`="`+escapeLabelValue(v)+`"`)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// series is one (labels, value) pair of a family; family groups them.
type series struct {
	labels string // raw label block
	value  int64
	hist   *Histogram
}

type family struct {
	name   string // registry family name (dotted, no labels)
	kind   string // "counter" | "gauge" | "histogram"
	series []series
}

// WritePrometheus renders every metric of the registry in Prometheus text
// exposition format: families sorted by name, one HELP and TYPE line each,
// series sorted by label block. A nil registry renders nothing.
func WritePrometheus(w io.Writer, reg *Registry) {
	if reg == nil {
		return
	}
	ex := reg.Export()
	fams := map[string]*family{}
	collect := func(name, kind string, s series) {
		fam, labels := splitLabels(name)
		s.labels = labels
		key := kind + "\x00" + fam
		f := fams[key]
		if f == nil {
			f = &family{name: fam, kind: kind}
			fams[key] = f
		}
		f.series = append(f.series, s)
	}
	for n, v := range ex.Counters {
		collect(n, "counter", series{value: v})
	}
	for n, v := range ex.Gauges {
		collect(n, "gauge", series{value: v})
	}
	for n, h := range ex.Histograms {
		collect(n, "histogram", series{hist: h})
	}
	ordered := make([]*family, 0, len(fams))
	for _, f := range fams {
		sort.Slice(f.series, func(a, b int) bool { return f.series[a].labels < f.series[b].labels })
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].name != ordered[b].name {
			return ordered[a].name < ordered[b].name
		}
		return ordered[a].kind < ordered[b].kind
	})
	for _, f := range ordered {
		pn := promName(f.name)
		if f.kind == "counter" && !strings.HasSuffix(pn, "_total") {
			pn += "_total"
		}
		fmt.Fprintf(w, "# HELP %s Registry metric %s.\n", pn, f.name)
		fmt.Fprintf(w, "# TYPE %s %s\n", pn, f.kind)
		for _, s := range f.series {
			if f.kind != "histogram" {
				fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(s.labels, ""), s.value)
				continue
			}
			for _, b := range s.hist.Cumulative() {
				le := "+Inf"
				if b.UpperBound != BucketInf {
					le = fmt.Sprintf("%d", int64(b.UpperBound))
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabels(s.labels, `le="`+le+`"`), b.Count)
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", pn, promLabels(s.labels, ""), int64(s.hist.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", pn, promLabels(s.labels, ""), s.hist.Count())
		}
	}
}

// MetricsHandler serves the registry as a Prometheus scrape target. Mounted
// at /metrics by every daemon, next to the expvar debug mux.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		WritePrometheus(&buf, reg)
		w.Header().Set("Content-Type", ContentTypeMetrics)
		_, _ = w.Write(buf.Bytes())
	})
}
