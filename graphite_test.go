// Tests exercising the public facade: the API a downstream user sees.
package graphite_test

import (
	"testing"

	"graphite"
)

func TestFacadeQuickstart(t *testing.T) {
	g := graphite.TransitExample()
	r, err := graphite.RunSSSP(g, 0, 0, 2)
	if err != nil {
		t.Fatalf("RunSSSP: %v", err)
	}
	costs := graphite.SSSPCosts(r, 4)
	if len(costs) != 2 || costs[1].Value != 5 {
		t.Fatalf("E costs = %v", costs)
	}
}

func TestFacadeBuilderAndCustomProgram(t *testing.T) {
	b := graphite.NewGraphBuilder(2, 1)
	b.AddVertex(1, graphite.NewInterval(0, 10))
	b.AddVertex(2, graphite.NewInterval(0, 10))
	b.AddEdge(1, 1, 2, graphite.NewInterval(3, 7))
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	r, err := graphite.Run(g, &tokenFlood{}, graphite.Options{NumWorkers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := r.StateByID(2)
	if v, _ := st.Get(4); v.(int64) != 1 {
		t.Errorf("token not flooded within edge lifespan: %v", st.Parts())
	}
	if v, _ := st.Get(8); v.(int64) != 0 {
		t.Errorf("token leaked outside edge lifespan: %v", st.Parts())
	}
}

// tokenFlood is a minimal user-written ICM program using only facade types.
type tokenFlood struct{}

func (tokenFlood) Init(v *graphite.VertexCtx) {
	v.SetState(v.Lifespan(), int64(0))
}

func (tokenFlood) Compute(v *graphite.VertexCtx, t graphite.Interval, state any, msgs []any) {
	if v.Superstep() == 1 && v.ID() == 1 {
		v.SetState(t, int64(1))
		return
	}
	if state.(int64) == 0 && len(msgs) > 0 {
		v.SetState(t, int64(1))
	}
}

func (tokenFlood) Scatter(v *graphite.VertexCtx, e *graphite.Edge, t graphite.Interval, state any) []graphite.OutMsg {
	return []graphite.OutMsg{{Value: state}}
}

func TestFacadeWarp(t *testing.T) {
	out := graphite.Warp(
		[]graphite.WarpInput{{Interval: graphite.Universe, Value: "s"}},
		[]graphite.WarpInput{
			{Interval: graphite.From(9), Value: 5},
			{Interval: graphite.From(6), Value: 7},
		},
	)
	if len(out) != 2 || out[0].Interval != graphite.NewInterval(6, 9) {
		t.Fatalf("warp = %v", out)
	}
}

func TestFacadeIO(t *testing.T) {
	g := graphite.TransitExample()
	path := t.TempDir() + "/transit.tg"
	if err := graphite.WriteGraphFile(path, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, err := graphite.ReadGraphFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch")
	}
}
