module graphite

go 1.24
