// Command graphite-worker runs one cluster worker: it dials the
// coordinator, receives a shard assignment, executes its slice of every
// superstep, and persists durable checkpoints under -dir so that a
// replacement process started on the same directory can take over after a
// crash (kill -9 included).
//
// Usage:
//
//	graphite-worker -coordinator HOST:PORT -dir PATH [-dial-attempts N]
//	                [-dial-backoff D] [-v]
//
// The worker exits 0 when the cluster run completes. If this process
// replaces a dead worker, -dir MUST be the dead worker's checkpoint
// directory (shared storage or the same machine): the directory is bound
// to a shard on first assignment and the worker refuses to restore
// another shard's state.
//
// For fault-injection experiments the environment variable GRAPHITE_CRASH
// may hold a plan "PHASE:SUPERSTEP" (phase: compute, checkpoint, barrier);
// the worker then SIGKILLs itself at that point, exactly like the chaos
// harness does in the repo's kill-9 recovery tests.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"graphite/internal/cluster"
	"graphite/internal/obs"
)

func main() {
	var (
		coord    = flag.String("coordinator", "", "coordinator address (host:port)")
		dir      = flag.String("dir", "", "durable checkpoint directory (reuse a dead worker's to replace it)")
		attempts = flag.Int("dial-attempts", cluster.DefaultDialAttempts, "coordinator dial attempts before giving up")
		backoff  = flag.Duration("dial-backoff", cluster.DefaultDialBackoff, "base dial retry backoff (jittered, capped exponential)")
		verbose  = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-worker", *verbose)
	if *coord == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	plan, err := cluster.ParseCrashPlan(os.Getenv(cluster.CrashEnv))
	if err != nil {
		fatal(log, "crash plan", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = cluster.RunWorker(ctx, cluster.WorkerConfig{
		Addr:         *coord,
		Dir:          *dir,
		DialAttempts: *attempts,
		DialBackoff:  *backoff,
		Crash:        plan,
		Logger:       log,
	})
	if err != nil {
		fatal(log, "worker run", err)
	}
	log.Info("worker done")
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
