// Command graphite-worker runs one cluster worker: it dials the
// coordinator, receives a shard assignment, executes its slice of every
// superstep, and persists durable checkpoints under -dir so that a
// replacement process started on the same directory can take over after a
// crash (kill -9 included).
//
// Usage:
//
//	graphite-worker -coordinator HOST:PORT -dir PATH [-dial-attempts N]
//	                [-dial-backoff D] [-data-plane direct|relay]
//	                [-mesh-addr ADDR] [-http ADDR] [-trace] [-v]
//
// The worker exits 0 when the cluster run completes. If this process
// replaces a dead worker, -dir MUST be the dead worker's checkpoint
// directory (shared storage or the same machine): the directory is bound
// to a shard on first assignment and the worker refuses to restore
// another shard's state.
//
// With -http the worker serves a Prometheus text /metrics endpoint (plus
// /debug/vars and /debug/pprof) on ADDR and writes the bound address to
// DIR/http.addr, so a scraper — or the repo's metrics-smoke test — can
// discover it even when ADDR ends in ":0". With -trace the worker appends
// its JSONL run trace to DIR/trace.jsonl; append-mode means a replacement
// process extends the same file, producing one trace per slot that
// graphite-trace -cluster can merge with the coordinator's.
//
// With -data-plane direct (the default) the worker opens a mesh listener
// on -mesh-addr and ships message batches straight to its peers, leaving
// the coordinator pure control flow; "relay" disables the listener and
// routes batches through the coordinator. A fleet degrades to relay — it
// never aborts — when any worker opts out or cannot dial the mesh.
//
// For fault-injection experiments the environment variable GRAPHITE_CRASH
// may hold a plan "PHASE:SUPERSTEP" (phase: compute, peersend, checkpoint,
// barrier); the worker then SIGKILLs itself at that point, exactly like
// the chaos harness does in the repo's kill-9 recovery tests.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"graphite/internal/cluster"
	"graphite/internal/obs"
)

func main() {
	var (
		coord    = flag.String("coordinator", "", "coordinator address (host:port)")
		dir      = flag.String("dir", "", "durable checkpoint directory (reuse a dead worker's to replace it)")
		attempts = flag.Int("dial-attempts", cluster.DefaultDialAttempts, "coordinator dial attempts before giving up")
		backoff  = flag.Duration("dial-backoff", cluster.DefaultDialBackoff, "base dial retry backoff (jittered, capped exponential)")
		plane    = flag.String("data-plane", cluster.PlaneDirect, `batch transport this worker offers: "direct" (peer mesh) or "relay"`)
		meshAddr = flag.String("mesh-addr", "", "mesh listen address (default: an ephemeral loopback port)")
		httpAddr = flag.String("http", "", "serve /metrics and /debug on this address; bound address is written to DIR/http.addr")
		doTrace  = flag.Bool("trace", false, "append the JSONL run trace to DIR/trace.jsonl")
		verbose  = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-worker", *verbose)
	if *coord == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	plan, err := cluster.ParseCrashPlan(os.Getenv(cluster.CrashEnv))
	if err != nil {
		fatal(log, "crash plan", err)
	}
	cfg := cluster.WorkerConfig{
		Addr:           *coord,
		Dir:            *dir,
		DialAttempts:   *attempts,
		DialBackoff:    *backoff,
		DataPlane:      *plane,
		MeshListenAddr: *meshAddr,
		Crash:          plan,
		Logger:         log,
	}
	if *httpAddr != "" || *doTrace {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(log, "worker dir", err)
		}
	}
	if *doTrace {
		trace, err := obs.AppendJSONLTrace(filepath.Join(*dir, "trace.jsonl"))
		if err != nil {
			fatal(log, "open trace", err)
		}
		defer trace.Close()
		cfg.Tracer = trace
	}
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		cfg.Registry = reg
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(log, "metrics listener", err)
		}
		if err := os.WriteFile(filepath.Join(*dir, "http.addr"),
			[]byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(log, "write http.addr", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(reg))
		mux.Handle("/debug/", obs.DebugMux(reg))
		go func() { _ = http.Serve(ln, mux) }()
		log.Info("http endpoint up", "addr", ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = cluster.RunWorker(ctx, cfg)
	if err != nil {
		fatal(log, "worker run", err)
	}
	log.Info("worker done")
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
