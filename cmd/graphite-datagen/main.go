// Command graphite-datagen generates the synthetic temporal graph datasets
// (the six Table 1 profiles and the LDBC-like weak-scaling graphs) in the
// text format internal/tgraph reads, and prints their characteristics.
//
// Usage:
//
//	graphite-datagen -out DIR [-scale S] [-seed N] [-partitions N] [-v] [profile...]
//
// With -partitions N each profile is additionally cut into an N-shard
// partition directory DIR/NAME.parts (full.gsn + part-NNN.gsn, the layout
// graphite-partition produces), resolvable by the cluster's "shard:DIR"
// graph spec.
package main

import (
	"flag"
	"os"
	"path/filepath"

	"graphite/internal/cluster"
	"graphite/internal/gen"
	"graphite/internal/obs"
	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

func main() {
	var (
		out        = flag.String("out", "", "output directory (empty: print characteristics only)")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		seed       = flag.Int64("seed", 42, "generator seed")
		format     = flag.String("format", "text", "output format: text, binary, or snapshot (mmap-able)")
		partitions = flag.Int("partitions", 0, "also cut each profile into this many shard partitions under DIR/NAME.parts")
		verbose    = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-datagen", *verbose)

	profiles := gen.AllProfiles(gen.Scale(*scale))
	if flag.NArg() > 0 {
		byName := map[string]gen.Profile{}
		for _, p := range profiles {
			byName[p.Name] = p
		}
		profiles = nil
		for _, name := range flag.Args() {
			p, ok := byName[name]
			if !ok {
				log.Error("unknown profile", "profile", name)
				os.Exit(2)
			}
			profiles = append(profiles, p)
		}
	}

	t := stats.Table{Header: []string{
		"Graph", "#Snaps", "|V|", "|E|", "Snap|V|", "Snap|E|", "Trans|V|", "Trans|E|",
		"LifeV", "LifeE", "LifeProp", "File",
	}}
	for _, p := range profiles {
		log.Debug("generating", "profile", p.Name, "scale", *scale)
		g, err := gen.Generate(p, *seed)
		if err != nil {
			log.Error("generate profile", "profile", p.Name, "err", err)
			os.Exit(1)
		}
		file := "-"
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Error("create output dir", "dir", *out, "err", err)
				os.Exit(1)
			}
			write := tgraph.WriteFile
			ext := ".tg"
			switch *format {
			case "binary":
				write, ext = tgraph.WriteBinaryFile, ".tgb"
			case "snapshot":
				write, ext = tgraph.WriteSnapshotFile, ".gsn"
			}
			file = filepath.Join(*out, p.Name+ext)
			if err := write(file, g); err != nil {
				log.Error("write graph", "path", file, "err", err)
				os.Exit(1)
			}
			log.Debug("profile written", "profile", p.Name, "path", file)
			if *partitions > 0 {
				dir := filepath.Join(*out, p.Name+".parts")
				infos, err := cluster.WritePartitions(g, dir, *partitions)
				if err != nil {
					log.Error("partition graph", "profile", p.Name, "err", err)
					os.Exit(1)
				}
				for _, pi := range infos {
					log.Debug("partition written", "profile", p.Name, "shard", pi.Shard,
						"owned", pi.Owned, "edges", pi.Edges, "bytes", pi.Bytes)
				}
			}
		}
		c := g.ComputeCharacteristics()
		t.Add(p.Name, c.Snapshots, c.IntervalV, c.IntervalE, c.LargestSnapV, c.LargestSnapE,
			c.TransformedV, c.TransformedE, c.AvgVertexLife, c.AvgEdgeLife, c.AvgPropLife, file)
	}
	t.Render(os.Stdout)
}
