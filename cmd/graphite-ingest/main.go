// Command graphite-ingest builds a temporal graph file from an event log
// (the streaming-ingestion path): one timestamped mutation per line, closed
// at an optional horizon, written as text, binary, or an mmap-able
// snapshot.
//
// Usage:
//
//	graphite-ingest -log events.txt -out graph.tg [-horizon T] [-format binary|snapshot] [-v]
//
// Log records: av/rv (vertex), ae/re (edge), vp/ep (property); see
// internal/stream.ReadLog for the exact grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphite/internal/obs"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

func main() {
	var (
		logPath = flag.String("log", "", "event log file (default: stdin)")
		out     = flag.String("out", "", "output graph file")
		horizon = flag.Int64("horizon", 0, "close still-open entities at this time (0: leave unbounded)")
		format  = flag.String("format", "text", "output format: text, binary, or snapshot (mmap-able)")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-ingest", *verbose)
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Validate the format before consuming the log: a typo here must not
	// cost a full read of a multi-gigabyte event stream.
	write := tgraph.WriteFile
	switch *format {
	case "text":
	case "binary":
		write = tgraph.WriteBinaryFile
	case "snapshot":
		write = tgraph.WriteSnapshotFile
	default:
		log.Error("unknown -format (want text, binary, or snapshot)", "format", *format)
		os.Exit(2)
	}

	in := os.Stdin
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			log.Error("open log", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	acc := stream.NewAccumulator()
	start := time.Now()
	if err := stream.ReadLog(in, acc); err != nil {
		log.Error("read log", "err", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	rate := float64(acc.Events()) / max(elapsed.Seconds(), 1e-9)
	log.Info("log consumed", "events", acc.Events(),
		"elapsed", elapsed.Round(time.Millisecond), "events_per_sec", fmt.Sprintf("%.0f", rate))
	g, err := acc.Graph(*horizon)
	if err != nil {
		log.Error("materialize graph", "err", err)
		os.Exit(1)
	}
	if err := write(*out, g); err != nil {
		log.Error("write graph", "path", *out, "err", err)
		os.Exit(1)
	}
	log.Info("ingested", "events", acc.Events(), "graph", fmt.Sprint(g), "out", *out)
}
