// Command graphite-ingest builds a temporal graph file from an event log
// (the streaming-ingestion path): one timestamped mutation per line, closed
// at an optional horizon, written in the text or binary graph format.
//
// Usage:
//
//	graphite-ingest -log events.txt -out graph.tg [-horizon T] [-format binary]
//
// Log records: av/rv (vertex), ae/re (edge), vp/ep (property); see
// internal/stream.ReadLog for the exact grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

func main() {
	var (
		logPath = flag.String("log", "", "event log file (default: stdin)")
		out     = flag.String("out", "", "output graph file")
		horizon = flag.Int64("horizon", 0, "close still-open entities at this time (0: leave unbounded)")
		format  = flag.String("format", "text", "output format: text or binary")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	acc := stream.NewAccumulator()
	if err := stream.ReadLog(in, acc); err != nil {
		fatal("%v", err)
	}
	g, err := acc.Graph(*horizon)
	if err != nil {
		fatal("materialize: %v", err)
	}
	write := tgraph.WriteFile
	if *format == "binary" {
		write = tgraph.WriteBinaryFile
	}
	if err := write(*out, g); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("ingested %d events -> %v -> %s\n", acc.Events(), g, *out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphite-ingest: "+format+"\n", args...)
	os.Exit(1)
}
