// Command graphite-verify cross-checks every platform's results on a
// temporal graph against the reference oracles — the paper's "all platforms
// produce identical results" claim (Sec. VII-B1) as a standalone tool.
//
// Usage:
//
//	graphite-verify -graph FILE [-workers N] [-source ID] [-target ID]
//	graphite-verify -profile twitter -scale 0.2 [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"graphite/internal/gen"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
	"graphite/internal/verify"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "temporal graph file")
		profile   = flag.String("profile", "", "generate a dataset profile instead (gplus reddit usrn twitter mag webuk)")
		scale     = flag.Float64("scale", 0.1, "profile scale factor")
		seed      = flag.Int64("seed", 42, "profile generator seed")
		workers   = flag.Int("workers", 4, "BSP workers")
		source    = flag.Int64("source", -1, "source vertex id (default: first vertex)")
		target    = flag.Int64("target", -1, "LD target vertex id (default: last vertex)")
		verbose   = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-verify", *verbose)

	var g *tgraph.Graph
	var err error
	switch {
	case *graphPath != "":
		// OpenAnyFile maps .gsn snapshots instead of parsing them; the
		// mapping lives until process exit.
		var m *tgraph.Mapped
		if m, err = tgraph.OpenAnyFile(*graphPath); err == nil {
			g = m.Graph
		}
	case *profile != "":
		for _, p := range gen.AllProfiles(gen.Scale(*scale)) {
			if p.Name == *profile {
				g, err = gen.Generate(p, *seed)
			}
		}
		if g == nil && err == nil {
			err = fmt.Errorf("unknown profile %q", *profile)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Error("load graph", "err", err)
		os.Exit(1)
	}
	log.Info("verifying across GRAPHITE, MSB, Chlonos, TGB, GoFFish and the oracles", "graph", fmt.Sprint(g))

	cfg := verify.Config{Workers: *workers}
	if *source >= 0 {
		cfg.Source, cfg.HasSource = tgraph.VertexID(*source), true
	}
	if *target >= 0 {
		cfg.Target, cfg.HasTarget = tgraph.VertexID(*target), true
	}
	reports, err := verify.All(g, cfg)
	if err != nil {
		log.Error("verification run", "err", err)
		os.Exit(1)
	}
	failed := false
	for _, r := range reports {
		status := "OK"
		if !r.Passed() {
			status = "MISMATCH"
			failed = true
		}
		fmt.Printf("  %-5s %-8s (%d comparisons)\n", r.Algorithm, status, r.Checks)
		for _, m := range r.Mismatch {
			fmt.Printf("    %s\n", m)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all platforms agree with the oracles")
}
