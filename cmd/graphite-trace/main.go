// Command graphite-trace renders a JSONL trace written by graphite-run or
// graphite-bench (-trace flag) as the paper-style per-superstep breakdown
// table: compute+/messaging/barrier splits, primitive counts, warp behaviour
// and fault events per superstep, plus the run totals.
//
// Usage:
//
//	graphite-trace [-check] [-v] trace.jsonl
//	graphite-trace -cluster [-check] [-v] coordinator.jsonl worker0.jsonl ...
//
// A trace file may hold several runs back to back (graphite-bench appends
// every ICM run of an experiment to one file); each run is rendered — or
// validated — separately.
//
// With -check the trace is validated instead of rendered: schema shape,
// superstep contiguity (rollback-and-replay aware), and exact reconciliation
// of per-superstep sums against the run_end totals. A failed check exits
// non-zero, which is what the Makefile trace-smoke target keys off.
//
// With -cluster the first file is a coordinator trace (graphite-coordinator
// -trace) and the rest are per-worker traces (graphite-worker -trace, one
// trace.jsonl per worker directory). The files are merged into one cluster
// timeline: every surviving superstep execution must be backed by a
// worker-measured shard_step carrying the same span ID, epoch and phase
// timings, and the result is rendered as the per-superstep straggler
// attribution table (compute vs barrier-wait vs relay, slowest shard, skew).
// -cluster -check merges and reconciles without rendering.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"graphite/internal/obs"
)

func main() {
	var (
		check   = flag.Bool("check", false, "validate the trace instead of rendering it")
		cluster = flag.Bool("cluster", false, "merge a coordinator trace with per-worker traces into one cluster timeline")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-trace", *verbose)
	if *cluster {
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "usage: graphite-trace -cluster [-check] coordinator.jsonl worker0.jsonl ...")
			os.Exit(2)
		}
		clusterMain(log, *check)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphite-trace [-check] trace.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	events := parseFile(log, path)
	// graphite-bench appends every ICM run to one file; treat a trace as a
	// sequence of runs throughout.
	runs := obs.SplitRuns(events)
	log.Debug("trace parsed", "path", path, "events", len(events), "runs", len(runs))
	if len(runs) == 0 {
		log.Error("trace invalid", "err", "no run_start event found")
		os.Exit(1)
	}

	if *check {
		for i, run := range runs {
			if err := obs.ValidateTrace(run); err != nil {
				log.Error("trace invalid", "run", i+1, "err", err)
				os.Exit(1)
			}
		}
		fmt.Printf("trace OK: %d events, %d run(s)\n", len(events), len(runs))
		return
	}

	for i, run := range runs {
		if len(runs) > 1 {
			fmt.Printf("--- run %d/%d ---\n", i+1, len(runs))
		}
		s, err := obs.Summarize(run)
		if err != nil {
			log.Error("summarize trace", "run", i+1, "err", err)
			os.Exit(1)
		}
		s.Render(os.Stdout)
		if i < len(runs)-1 {
			fmt.Println()
		}
	}
}

// clusterMain merges coordinator + worker traces and renders (or, with
// -check, just reconciles) the cluster timeline.
func clusterMain(log *slog.Logger, check bool) {
	coord := parseFile(log, flag.Arg(0))
	var workers [][]obs.Event
	for _, path := range flag.Args()[1:] {
		workers = append(workers, parseFile(log, path))
	}
	ct, err := obs.MergeClusterTrace(coord, workers)
	if err != nil {
		log.Error("cluster trace reconciliation failed", "err", err)
		os.Exit(1)
	}
	log.Debug("cluster trace merged", "span", ct.Span, "workers", ct.Workers,
		"steps", len(ct.Steps), "recoveries", ct.Recoveries)
	if check {
		fmt.Printf("cluster trace OK: span=%s %d worker trace(s), %d superstep(s), %d recovery(ies)\n",
			ct.Span, len(workers), len(ct.Steps), ct.Recoveries)
		return
	}
	ct.Render(os.Stdout)
}

func parseFile(log *slog.Logger, path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Error("open trace", "err", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		log.Error("parse trace", "path", path, "err", err)
		os.Exit(1)
	}
	return events
}
