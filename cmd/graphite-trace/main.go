// Command graphite-trace renders a JSONL trace written by graphite-run or
// graphite-bench (-trace flag) as the paper-style per-superstep breakdown
// table: compute+/messaging/barrier splits, primitive counts, warp behaviour
// and fault events per superstep, plus the run totals.
//
// Usage:
//
//	graphite-trace [-check] [-v] trace.jsonl
//
// A trace file may hold several runs back to back (graphite-bench appends
// every ICM run of an experiment to one file); each run is rendered — or
// validated — separately.
//
// With -check the trace is validated instead of rendered: schema shape,
// superstep contiguity (rollback-and-replay aware), and exact reconciliation
// of per-superstep sums against the run_end totals. A failed check exits
// non-zero, which is what the Makefile trace-smoke target keys off.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphite/internal/obs"
)

func main() {
	var (
		check   = flag.Bool("check", false, "validate the trace instead of rendering it")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-trace", *verbose)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphite-trace [-check] trace.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		log.Error("open trace", "err", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		log.Error("parse trace", "err", err)
		os.Exit(1)
	}
	// graphite-bench appends every ICM run to one file; treat a trace as a
	// sequence of runs throughout.
	runs := obs.SplitRuns(events)
	log.Debug("trace parsed", "path", path, "events", len(events), "runs", len(runs))
	if len(runs) == 0 {
		log.Error("trace invalid", "err", "no run_start event found")
		os.Exit(1)
	}

	if *check {
		for i, run := range runs {
			if err := obs.ValidateTrace(run); err != nil {
				log.Error("trace invalid", "run", i+1, "err", err)
				os.Exit(1)
			}
		}
		fmt.Printf("trace OK: %d events, %d run(s)\n", len(events), len(runs))
		return
	}

	for i, run := range runs {
		if len(runs) > 1 {
			fmt.Printf("--- run %d/%d ---\n", i+1, len(runs))
		}
		s, err := obs.Summarize(run)
		if err != nil {
			log.Error("summarize trace", "run", i+1, "err", err)
			os.Exit(1)
		}
		s.Render(os.Stdout)
		if i < len(runs)-1 {
			fmt.Println()
		}
	}
}
