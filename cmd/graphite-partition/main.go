// Command graphite-partition cuts a temporal graph into per-shard
// partition files for the cluster's "shard:DIR" graph spec: a full-graph
// copy (full.gsn) for the coordinator plus one induced subgraph
// (part-NNN.gsn) per worker shard. Each partition keeps the complete
// vertex set — so global message addressing and halting bounds stay
// identical to the whole graph — but only the edges touching the shard's
// owned vertices, which is what makes a worker's resident graph O(V/N)
// edge bytes instead of the full edge list.
//
// Usage:
//
//	graphite-partition -in PATH -out DIR -n SHARDS [-v]
//
// -in accepts any graph format internal/tgraph reads (.tg text, .tgb
// binary, .gsn snapshot). Placement is the engine's balanced LPT
// partitioner over per-vertex work weights — the same rule a whole-graph
// cluster run computes — and the assignment is embedded in every output
// file, so coordinator and workers adopt one vertex→shard map instead of
// recomputing it from partial graphs.
package main

import (
	"flag"
	"os"

	"graphite/internal/cluster"
	"graphite/internal/obs"
	"graphite/internal/stats"
	"graphite/internal/tgraph"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph file (.tg, .tgb, or .gsn)")
		out     = flag.String("out", "", "output partition directory")
		shards  = flag.Int("n", 0, "number of shards to cut")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-partition", *verbose)
	if *in == "" || *out == "" || *shards <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	m, err := tgraph.OpenAnyFile(*in)
	if err != nil {
		log.Error("open graph", "path", *in, "err", err)
		os.Exit(1)
	}
	defer m.Close()
	infos, err := cluster.WritePartitions(m.Graph, *out, *shards)
	if err != nil {
		log.Error("write partitions", "dir", *out, "err", err)
		os.Exit(1)
	}
	t := stats.Table{Header: []string{"Shard", "File", "Owned|V|", "|V|", "|E|", "Bytes"}}
	for _, pi := range infos {
		shard := any("full")
		if pi.Shard >= 0 {
			shard = pi.Shard
		}
		t.Add(shard, pi.Name, pi.Owned, pi.Vertices, pi.Edges, pi.Bytes)
	}
	t.Render(os.Stdout)
	log.Info("partitioned", "in", *in, "out", *out, "shards", *shards)
}
