// Command graphite-run executes one of the twelve ICM algorithms over a
// temporal graph file and prints per-vertex results and run metrics.
//
// Usage:
//
//	graphite-run -graph FILE -algo NAME [-source ID] [-target ID]
//	             [-start T] [-deadline T] [-workers N] [-top K]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "temporal graph file (tgraph text format)")
		algo      = flag.String("algo", "", "algorithm: bfs wcc scc pr sssp eat fast ld tmst rh lcc tc")
		source    = flag.Int64("source", 0, "source vertex id (path algorithms)")
		target    = flag.Int64("target", -1, "target vertex id (LD; default: source)")
		start     = flag.Int64("start", 0, "journey start time")
		deadline  = flag.Int64("deadline", 0, "LD deadline (0: graph horizon)")
		workers   = flag.Int("workers", 0, "BSP workers (0: GOMAXPROCS)")
		top       = flag.Int("top", 10, "print at most this many vertices")
	)
	flag.Parse()
	if *graphPath == "" || *algo == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := tgraph.ReadAnyFile(*graphPath)
	if err != nil {
		fatal("load graph: %v", err)
	}
	fmt.Printf("loaded %v (horizon %d)\n", g, g.Horizon())

	src := tgraph.VertexID(*source)
	tgt := tgraph.VertexID(*target)
	if *target < 0 {
		tgt = src
	}
	dl := ival.Time(*deadline)
	if dl == 0 {
		dl = g.Horizon()
	}

	var r *core.Result
	switch strings.ToLower(*algo) {
	case "bfs":
		r, err = algorithms.RunBFS(g, src, *workers)
	case "wcc":
		r, err = algorithms.RunWCC(g, *workers)
	case "scc":
		r, err = algorithms.RunSCC(g, *workers)
	case "pr":
		r, err = algorithms.RunPageRank(g, 10, *workers)
	case "sssp":
		r, err = algorithms.RunSSSP(g, src, *start, *workers)
	case "eat":
		r, err = algorithms.RunEAT(g, src, *start, *workers)
	case "fast":
		r, err = algorithms.RunFAST(g, src, *start, *workers)
	case "ld":
		r, err = algorithms.RunLD(g, tgt, dl, *workers)
	case "tmst":
		r, err = algorithms.RunTMST(g, src, *start, *workers)
	case "rh":
		r, err = algorithms.RunRH(g, src, *start, *workers)
	case "lcc":
		r, err = algorithms.RunLCC(g, *workers)
	case "tc":
		r, err = algorithms.RunTC(g, *workers)
	default:
		fatal("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal("run: %v", err)
	}

	fmt.Printf("metrics: %v\n", r.Metrics)
	fmt.Printf("stats: warp=%d suppressed=%d active-intervals=%d max-partitions=%d\n",
		r.Stats.WarpCalls, r.Stats.WarpSuppressed, r.Stats.ActiveIntervals, r.Stats.MaxPartitions)

	// Print the first vertices by id.
	ids := make([]tgraph.VertexID, 0, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		ids = append(ids, g.VertexAt(i).ID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	if len(ids) > *top {
		ids = ids[:*top]
	}
	for _, id := range ids {
		st := r.StateByID(id)
		fmt.Printf("vertex %d: ", id)
		var parts []string
		for _, p := range st.Parts() {
			parts = append(parts, fmt.Sprintf("%v=%v", p.Interval, p.Value))
		}
		fmt.Println(strings.Join(parts, " "))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphite-run: "+format+"\n", args...)
	os.Exit(1)
}
