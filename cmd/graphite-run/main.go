// Command graphite-run executes one of the twelve ICM algorithms over a
// temporal graph file and prints per-vertex results and run metrics.
//
// Usage:
//
//	graphite-run -graph FILE -algo NAME [-source ID] [-target ID]
//	             [-start T] [-deadline T] [-workers N] [-top K]
//	             [-trace out.jsonl] [-pprof addr] [-v]
//
// The special graph name "transit" runs over the paper's built-in transit
// example without needing a file. With -trace, the run's per-superstep event
// stream is written as JSONL; render or validate it with graphite-trace.
// With -pprof, /debug/vars (the metrics registry) and /debug/pprof are
// served on the given address for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/serve"
	"graphite/internal/tgraph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", `temporal graph file, or "transit" for the built-in example`)
		algo      = flag.String("algo", "", "algorithm: "+strings.Join(algorithms.Names(), " "))
		source    = flag.Int64("source", 0, "source vertex id (path algorithms)")
		target    = flag.Int64("target", -1, "target vertex id (LD; default: source)")
		start     = flag.Int64("start", 0, "journey start time")
		deadline  = flag.Int64("deadline", 0, "LD deadline (0: graph horizon)")
		workers   = flag.Int("workers", 0, "BSP workers (0: GOMAXPROCS)")
		top       = flag.Int("top", 10, "print at most this many vertices")
		tracePath = flag.String("trace", "", "write the per-superstep JSONL trace to this file")
		span      = flag.String("span", "", "run span ID stamped on the trace (empty: minted randomly)")
		pprofAddr = flag.String("pprof", "", "serve /debug/vars and /debug/pprof on this address")
		verbose   = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-run", *verbose)
	if *graphPath == "" || *algo == "" {
		flag.Usage()
		os.Exit(2)
	}

	var g *tgraph.Graph
	if *graphPath == "transit" {
		g = tgraph.TransitExample()
	} else {
		// OpenAnyFile maps .gsn snapshots instead of parsing them; the
		// mapping lives until process exit.
		m, err := tgraph.OpenAnyFile(*graphPath)
		if err != nil {
			fatal(log, "load graph", err)
		}
		g = m.Graph
	}
	log.Info("graph loaded", "graph", fmt.Sprint(g), "horizon", int64(g.Horizon()))

	src := tgraph.VertexID(*source)
	tgt := tgraph.VertexID(*target)
	if *target < 0 {
		tgt = src
	}

	reg := obs.NewRegistry()
	if *pprofAddr != "" {
		srv, err := obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			fatal(log, "pprof endpoint", err)
		}
		defer srv.Close()
		log.Info("debug endpoint up", "addr", srv.Addr)
	}

	prog, opts, err := algorithms.New(g, *algo, algorithms.Params{
		Source:    src,
		Target:    tgt,
		StartTime: ival.Time(*start),
		Deadline:  ival.Time(*deadline),
	})
	if err != nil {
		fatal(log, "select algorithm", err)
	}
	opts.NumWorkers = *workers
	opts.Registry = reg
	if *span == "" {
		*span = obs.NewSpanID()
	}
	opts.Span = *span
	log.Debug("run span", "span", *span)
	if *tracePath != "" {
		jt, err := obs.CreateJSONLTrace(*tracePath)
		if err != nil {
			fatal(log, "open trace", err)
		}
		opts.Tracer = jt
		defer func() {
			if err := jt.Close(); err != nil {
				log.Error("close trace", "err", err)
			}
		}()
		log.Debug("tracing", "path", *tracePath)
	}

	r, err := core.Run(g, prog, opts)
	if err != nil {
		fatal(log, "run", err)
	}

	fmt.Printf("metrics: %v\n", r.Metrics)
	fmt.Printf("stats: warp=%d suppressed=%d active-intervals=%d max-partitions=%d\n",
		r.Stats.WarpCalls, r.Stats.WarpSuppressed, r.Stats.ActiveIntervals, r.Stats.MaxPartitions)

	// Print the first vertices by id, through the canonical renderer shared
	// with the serving layer.
	for _, line := range serve.FormatResult(r, *top) {
		fmt.Println(line)
	}
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
