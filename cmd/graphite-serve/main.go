// Command graphite-serve is the resident temporal graph query service: it
// loads one or more temporal graphs at startup and answers concurrent
// algorithm requests over a JSON HTTP API until shut down.
//
// Usage:
//
//	graphite-serve -graph name=FILE [-graph name=FILE ...]
//	               [-live name=FILE.wal ...] [-addr :8090]
//	               [-workers N] [-max-concurrent N] [-queue N] [-cache N]
//	               [-timeout D] [-drain D] [-v]
//
// The special spec "transit" (or "name=transit") loads the paper's built-in
// transit example. Graph files may be text or binary (see graphite-ingest).
//
// -live opens (creating if absent) a WAL-backed mutable graph: its event log
// is replayed on startup and POST /v1/graphs/{name}/events appends mutation
// batches, each durably logged before the new epoch becomes visible. A
// SIGKILL loses at most the unacknowledged tail batch; restarting on the
// same WAL restores the exact acknowledged graph. cmd/graphite-feed replays
// text event logs against this endpoint.
//
// Endpoints: GET /v1/graphs, POST /v1/run, GET/DELETE /v1/jobs/{id},
// GET /healthz, plus /debug/vars and /debug/pprof. On SIGINT/SIGTERM the
// server drains gracefully: new runs are rejected with 503 while in-flight
// and queued runs finish, up to -drain; whatever is still running then is
// aborted at its next superstep barrier.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ival "graphite/internal/interval"
	"graphite/internal/live"
	"graphite/internal/obs"
	"graphite/internal/serve"
	"graphite/internal/tgraph"
)

func main() {
	graphs := map[string]*tgraph.Graph{}
	var graphSpecs, liveSpecs []string
	flag.Func("graph", `graph to load, as name=FILE, name=transit, or just "transit" (repeatable)`, func(spec string) error {
		graphSpecs = append(graphSpecs, spec)
		return nil
	})
	flag.Func("live", "WAL-backed mutable graph, as name=FILE.wal (created if absent; repeatable)", func(spec string) error {
		liveSpecs = append(liveSpecs, spec)
		return nil
	})
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		workers       = flag.Int("workers", 0, "default BSP workers per run (0: GOMAXPROCS)")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent runs (0: GOMAXPROCS)")
		queue         = flag.Int("queue", serve.DefaultQueueDepth, "queued runs beyond max-concurrent before 429")
		cacheSize     = flag.Int("cache", serve.DefaultCacheSize, "result cache entries (negative disables)")
		timeout       = flag.Duration("timeout", serve.DefaultTimeout, "default per-request run deadline")
		drain         = flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
		horizon       = flag.Int64("live-horizon", 0, "close still-open live entities at this time in snapshots (0: unbounded)")
		compactEvery  = flag.Int("live-compact", 0, "auto-compact a live graph's WAL every N ingested events (0: never)")
		verbose       = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-serve", *verbose)
	if len(graphSpecs) == 0 && len(liveSpecs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, spec := range graphSpecs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = spec, spec
		}
		var g *tgraph.Graph
		if path == "transit" {
			g = tgraph.TransitExample()
		} else {
			// OpenAnyFile maps .gsn snapshots instead of parsing them; the
			// mapping lives until process exit.
			m, err := tgraph.OpenAnyFile(path)
			if err != nil {
				fatal(log, "load graph", err)
			}
			g = m.Graph
		}
		graphs[name] = g
		log.Info("graph loaded", "name", name, "graph", fmt.Sprint(g), "horizon", int64(g.Horizon()))
	}

	// Live graphs share the server's registry so their ingest counters and
	// epoch gauges show up on /metrics and /debug/vars.
	reg := obs.NewRegistry()
	liveGraphs := map[string]*live.Graph{}
	for _, spec := range liveSpecs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(log, "parse -live", fmt.Errorf("spec %q is not name=FILE.wal", spec))
		}
		lg, err := live.Open(path, live.Options{
			Name:         name,
			Horizon:      ival.Time(*horizon),
			CompactEvery: *compactEvery,
			Registry:     reg,
		})
		if err != nil {
			fatal(log, "open live graph", err)
		}
		defer lg.Close()
		liveGraphs[name] = lg
		info := lg.Info()
		rec := lg.LastRecovery()
		log.Info("live graph opened", "name", name, "wal", path,
			"epoch", info.Epoch, "events", info.Events, "vertices", info.Vertices, "edges", info.Edges,
			"from_snapshot", rec.FromSnapshot, "tail_events", rec.TailEvents)
	}

	s, err := serve.New(serve.Config{
		Graphs:         graphs,
		Live:           liveGraphs,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		Workers:        *workers,
		Registry:       reg,
	})
	if err != nil {
		fatal(log, "configure server", err)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "graphs", s.GraphNames())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(log, "listen", err)
	case <-ctx.Done():
	}

	log.Info("draining", "budget", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Warn("drain budget exceeded; aborting in-flight runs", "err", err)
	}
	_ = s.Close()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = hs.Shutdown(shutCtx)
	log.Info("stopped")
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
