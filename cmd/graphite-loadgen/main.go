// Command graphite-loadgen drives load at a graphite query service and
// checks that the serving layer's result cache is actually absorbing
// repeated work. It is the engine behind `make serve-smoke`.
//
// Usage:
//
//	graphite-loadgen -boot                 # boot an in-process server on :0
//	graphite-loadgen -url http://host:8090 # or target a running server
//	                 [-graph name] [-repeat N] [-conc N] [-v]
//
// The driver fires a burst of mixed requests — several distinct
// (graph, algorithm, params) combinations, each repeated -repeat times —
// then reads /debug/vars and fails (exit 1) unless every request succeeded
// and serve.cache.hits is non-zero.
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"

	"graphite/internal/obs"
	"graphite/internal/serve"
	"graphite/internal/serve/loadgen"
	"graphite/internal/tgraph"
)

func main() {
	var (
		boot    = flag.Bool("boot", false, "boot an in-process server over the transit example")
		url     = flag.String("url", "", "target an already-running server at this base URL")
		graph   = flag.String("graph", "transit", "graph name to query")
		repeat  = flag.Int("repeat", 8, "times to repeat each distinct request")
		conc    = flag.Int("conc", 8, "concurrent clients")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-loadgen", *verbose)

	base := *url
	if *boot {
		s, err := serve.New(serve.Config{
			Graphs: map[string]*tgraph.Graph{*graph: tgraph.TransitExample()},
		})
		if err != nil {
			log.Error("boot server", "err", err)
			os.Exit(1)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()
		base = ts.URL
		log.Info("booted in-process server", "url", base)
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "need -boot or -url")
		flag.Usage()
		os.Exit(2)
	}

	// Mixed burst: distinct algorithm/param combinations, each repeated, so
	// the server must execute a handful of runs and serve the rest from the
	// cache (or collapse them in flight).
	reqs := []loadgen.Request{
		{Graph: *graph, Algorithm: "bfs", Params: map[string]int64{"source": 1}},
		{Graph: *graph, Algorithm: "sssp", Params: map[string]int64{"source": 1}},
		{Graph: *graph, Algorithm: "eat", Params: map[string]int64{"source": 1}},
		{Graph: *graph, Algorithm: "pr", Params: map[string]int64{"iterations": 5}},
		{Graph: *graph, Algorithm: "tmst", Params: map[string]int64{"source": 1}},
	}
	res, err := loadgen.Fire(base, reqs, *repeat, *conc)
	if err != nil {
		log.Error("fire burst", "err", err)
		os.Exit(1)
	}
	log.Info("burst complete", "requests", res.Requests, "elapsed", res.Elapsed,
		"by_status", fmt.Sprint(res.ByStatus), "cached_responses", res.CacheHits)
	// Sequential confirm pass: every distinct request is cached by now, so
	// each of these must land as a cache hit.
	confirm, err := loadgen.Fire(base, reqs, 1, 1)
	if err != nil {
		log.Error("confirm pass", "err", err)
		os.Exit(1)
	}

	fail := false
	if len(res.Errors)+len(confirm.Errors) > 0 {
		errs := append(res.Errors, confirm.Errors...)
		log.Error("transport errors", "count", len(errs), "first", errs[0])
		fail = true
	}
	if res.ByStatus[200] != res.Requests || confirm.ByStatus[200] != confirm.Requests {
		log.Error("non-200 responses", "burst", fmt.Sprint(res.ByStatus),
			"confirm", fmt.Sprint(confirm.ByStatus))
		fail = true
	}
	if confirm.CacheHits != int64(len(reqs)) {
		log.Error("confirm pass missed the cache", "cached", confirm.CacheHits, "want", len(reqs))
		fail = true
	}

	snap, err := loadgen.DebugVars(base)
	if err != nil {
		log.Error("read /debug/vars", "err", err)
		os.Exit(1)
	}
	hits := loadgen.Metric(snap, serve.CCacheHits)
	dedup := loadgen.Metric(snap, serve.CFlightDedup)
	executed := loadgen.Metric(snap, serve.CRunsExecuted)
	log.Info("server metrics", "cache_hits", hits, "flight_dedup", dedup, "runs_executed", executed)

	// The cache assertion: each distinct request executes at most once per
	// miss; everything else must come back as a hit (or in-flight join that
	// the cache then serves). Requiring hits > 0 proves the cache is live.
	if hits <= 0 {
		log.Error("result cache absorbed no requests", "cache_hits", hits)
		fail = true
	}
	if executed > float64(len(reqs)) {
		log.Error("more BSP executions than distinct requests",
			"executed", executed, "distinct", len(reqs))
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("serve-smoke OK: %d requests, %d distinct runs executed, %.0f cache hits, %.0f in-flight joins\n",
		res.Requests+confirm.Requests, int(executed), hits, dedup)
}
