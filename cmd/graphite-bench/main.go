// Command graphite-bench regenerates the tables and figures of the ICM
// paper's evaluation over the synthetic dataset profiles.
//
// Usage:
//
//	graphite-bench [flags] <experiment>...
//
// Experiments: table1, table2, fig4, fig5, fig6a, fig6b, fig6c, fig7,
// msgsize, loc, chaos, alloc, skew, obs, recovery, stream, cluster, all. The
// skew
// experiment is the scheduler ablation (static / balanced-partition /
// work-stealing compute on a heavily skewed power-law graph); -skew-json
// records its report. The recovery experiment runs the multi-process cluster
// runtime, SIGKILLs a worker mid-superstep, and measures detection latency,
// MTTR, and replayed supersteps against a fault-free run; -recovery-json
// records its report. Worker processes are re-executions of this binary. The
// stream experiment measures the live-graph subsystem: durable WAL ingest
// throughput, replay cost, and incremental (seeded) vs cold recomputation
// with bit-identity enforced; -stream-json records its report. The cluster
// experiment runs the same partitioned computation on the relay and direct
// data planes, checks both bit-identical against a single-process run, and
// records makespans, plane byte counters, and per-shard resident graph
// sizes; -cluster-json records its report.
//
// With -trace, every ICM run in the selected experiments appends its
// per-superstep event stream to one JSONL file (render with graphite-trace);
// with -pprof, the metrics registry and the Go profiler are served over HTTP
// while the experiments run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphite/internal/bench"
	"graphite/internal/chaos"
	"graphite/internal/gen"
	"graphite/internal/obs"
)

func main() {
	// Re-executions of this binary spawned by the recovery experiment become
	// cluster workers here and never reach the flag parsing below.
	chaos.RunChildWorker()
	var (
		scale     = flag.Float64("scale", 1.0, "dataset scale factor (1.0 ~ quick laptop runs)")
		workers   = flag.Int("workers", 8, "BSP workers (the paper's cluster uses 8 nodes)")
		batch     = flag.Int("batch", 6, "Chlonos snapshots per batch")
		prIters   = flag.Int("pr-iters", 10, "PageRank iterations")
		seed      = flag.Int64("seed", 42, "dataset generator seed")
		algos     = flag.String("algos", "", "comma-separated algorithm subset for table2/fig4/fig5 (default: all 12)")
		tracePath = flag.String("trace", "", "append every ICM run's JSONL trace to this file")
		skewJSON  = flag.String("skew-json", "", "write the skew experiment report as JSON to this file")
		obsJSON   = flag.String("obs-json", "", "write the obs overhead-guard report as JSON to this file")
		recJSON   = flag.String("recovery-json", "", "write the recovery experiment report as JSON to this file")
		strJSON   = flag.String("stream-json", "", "write the stream experiment report as JSON to this file")
		loadJSON  = flag.String("load-json", "", "write the load experiment report as JSON to this file")
		clusJSON  = flag.String("cluster-json", "", "write the cluster data-plane experiment report as JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve /debug/vars and /debug/pprof on this address")
		verbose   = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphite-bench [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 fig4 fig5 fig6a fig6b fig6c fig7 msgsize loc chaos alloc skew obs recovery stream load cluster all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	log := obs.CLILogger("graphite-bench", *verbose)
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{
		Scale:        gen.Scale(*scale),
		Workers:      *workers,
		BatchSize:    *batch,
		PRIterations: *prIters,
		Seed:         *seed,
		Registry:     obs.NewRegistry(),
	}
	if *pprofAddr != "" {
		srv, err := obs.ServeDebug(*pprofAddr, cfg.Registry)
		if err != nil {
			log.Error("pprof endpoint", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		log.Info("debug endpoint up", "addr", srv.Addr)
	}
	if *tracePath != "" {
		jt, err := obs.CreateJSONLTrace(*tracePath)
		if err != nil {
			log.Error("open trace", "err", err)
			os.Exit(1)
		}
		cfg.Tracer = jt
		defer func() {
			if err := jt.Close(); err != nil {
				log.Error("close trace", "err", err)
			}
		}()
		log.Debug("tracing ICM runs", "path", *tracePath)
	}
	skewJSONPath = *skewJSON
	obsJSONPath = *obsJSON
	recoveryJSONPath = *recJSON
	streamJSONPath = *strJSON
	loadJSONPath = *loadJSON
	clusterJSONPath = *clusJSON
	selected := parseAlgos(*algos)

	for _, exp := range flag.Args() {
		log.Debug("experiment start", "exp", exp)
		if err := run(cfg, exp, selected); err != nil {
			log.Error("experiment failed", "exp", exp, "err", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func parseAlgos(s string) []bench.Algo {
	if s == "" {
		return append(append([]bench.Algo{}, bench.TIAlgos...), bench.TDAlgos...)
	}
	var out []bench.Algo
	for _, part := range strings.Split(s, ",") {
		out = append(out, bench.Algo(strings.ToUpper(strings.TrimSpace(part))))
	}
	return out
}

// matrix caches the expensive full measurement across experiments that
// share it.
var matrix []bench.Cell

// skewJSONPath, obsJSONPath, recoveryJSONPath and streamJSONPath, when set,
// receive the corresponding experiments' JSON reports.
var skewJSONPath, obsJSONPath, recoveryJSONPath, streamJSONPath, loadJSONPath, clusterJSONPath string

func getMatrix(cfg bench.Config, algos []bench.Algo) ([]bench.Cell, error) {
	if matrix != nil {
		return matrix, nil
	}
	var err error
	matrix, err = bench.RunMatrix(cfg, algos)
	return matrix, err
}

func run(cfg bench.Config, exp string, algos []bench.Algo) error {
	w := os.Stdout
	switch exp {
	case "all":
		for _, e := range []string{"table1", "table2", "fig4", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "msgsize", "loc", "chaos", "alloc"} {
			if err := run(cfg, e, algos); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "table1":
		rows, err := bench.Table1(cfg)
		if err != nil {
			return err
		}
		bench.RenderTable1(w, rows)
	case "table2":
		cells, err := getMatrix(cfg, algos)
		if err != nil {
			return err
		}
		bench.RenderTable2(w, bench.Table2(cells))
	case "fig4":
		cells, err := getMatrix(cfg, algos)
		if err != nil {
			return err
		}
		bench.RenderFig4(w, bench.Fig4(cells))
	case "fig5":
		cells, err := getMatrix(cfg, algos)
		if err != nil {
			return err
		}
		bench.RenderFig5(w, cells)
	case "fig6a":
		rows, err := bench.Fig6a(cfg)
		if err != nil {
			return err
		}
		bench.RenderFig6a(w, rows)
	case "fig6b":
		rows, err := bench.Fig6b(cfg)
		if err != nil {
			return err
		}
		bench.RenderFig6b(w, rows)
	case "fig6c":
		rows, err := bench.Fig6c(cfg)
		if err != nil {
			return err
		}
		bench.RenderFig6c(w, rows)
	case "fig7":
		rows, err := bench.Fig7(cfg, nil, nil)
		if err != nil {
			return err
		}
		bench.RenderFig7(w, rows)
	case "msgsize":
		rows, err := bench.MsgSize(cfg)
		if err != nil {
			return err
		}
		bench.RenderMsgSize(w, rows)
	case "loc":
		rows, err := bench.LoCTable()
		if err != nil {
			return err
		}
		bench.RenderLoC(w, rows)
	case "chaos":
		rows, err := bench.Chaos(cfg)
		if err != nil {
			return err
		}
		bench.RenderChaos(w, rows)
	case "alloc":
		rows, err := bench.Alloc(cfg)
		if err != nil {
			return err
		}
		bench.RenderAlloc(w, rows)
	case "skew":
		rep, err := bench.Skew(cfg)
		if err != nil {
			return err
		}
		bench.RenderSkew(w, rep)
		if skewJSONPath != "" {
			if err := bench.WriteSkewJSON(skewJSONPath, rep); err != nil {
				return err
			}
		}
	case "obs":
		rep, err := bench.Obs(cfg)
		if rep != nil {
			bench.RenderObs(w, rep)
			if obsJSONPath != "" {
				if werr := bench.WriteObsJSON(obsJSONPath, rep); werr != nil && err == nil {
					err = werr
				}
			}
		}
		if err != nil {
			return err
		}
	case "recovery":
		rep, err := bench.Recovery(cfg)
		if err != nil {
			return err
		}
		bench.RenderRecovery(w, rep)
		if recoveryJSONPath != "" {
			if err := bench.WriteRecoveryJSON(recoveryJSONPath, rep); err != nil {
				return err
			}
		}
	case "stream":
		rep, err := bench.Stream(cfg)
		if err != nil {
			return err
		}
		bench.RenderStream(w, rep)
		if streamJSONPath != "" {
			if err := bench.WriteStreamJSON(streamJSONPath, rep); err != nil {
				return err
			}
		}
	case "load":
		rep, err := bench.Load(cfg)
		if err != nil {
			return err
		}
		bench.RenderLoad(w, rep)
		if loadJSONPath != "" {
			if err := bench.WriteLoadJSON(loadJSONPath, rep); err != nil {
				return err
			}
		}
	case "cluster":
		rep, err := bench.ClusterBench(cfg)
		if err != nil {
			return err
		}
		bench.RenderCluster(w, rep)
		if clusterJSONPath != "" {
			if err := bench.WriteClusterJSON(clusterJSONPath, rep); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment (try: table1 table2 fig4 fig5 fig6a fig6b fig6c fig7 msgsize loc chaos alloc skew obs recovery stream load cluster all)")
	}
	return nil
}
