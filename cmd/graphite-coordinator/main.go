// Command graphite-coordinator drives one crash-tolerant cluster run: it
// listens for graphite-worker processes, assigns each a shard, runs the
// requested algorithm superstep-by-superstep across them, and survives
// worker deaths by rolling back to the last globally-committed checkpoint
// generation and replaying once a replacement rejoins.
//
// Usage:
//
//	graphite-coordinator -workers N -algo NAME [-graph SPEC] [-addr :8100]
//	                     [-source V] [-target V] [-iterations N]
//	                     [-data-plane direct|relay]
//	                     [-checkpoint-every K] [-lease D] [-rejoin-timeout D]
//	                     [-max-recoveries N] [-http ADDR] [-trace PATH]
//	                     [-span ID] [-top N] [-v]
//
// The graph SPEC is "transit" (the paper's built-in example), "file:PATH",
// or "shard:DIR" (a partition directory produced by graphite-partition —
// each worker then maps only its own induced subgraph); every worker must
// be able to resolve the same spec. -data-plane picks how message batches
// travel: "direct" (the default) has workers ship them peer-to-peer over a
// full TCP mesh, falling back to the coordinator relay — never aborting —
// if the mesh cannot be established; "relay" routes everything through the
// coordinator. With -http, a liveness (/healthz), readiness (/readyz — 503
// below worker quorum or mid-recovery), Prometheus text /metrics,
// per-superstep straggler attribution with direct-vs-relayed volume per
// shard (/debug/cluster), and /debug/vars + /debug/pprof surface is served
// while the run progresses. The process exits 0 with the rendered result
// once the computation completes.
//
// -trace writes the coordinator's JSONL cluster trace (cluster_step rows,
// per-shard phase spans, recoveries) to PATH; merge it with per-worker
// traces via "graphite-trace -cluster PATH worker0/trace.jsonl ...".
// -span pins the run's span ID (minted randomly when empty); every worker
// stamps the same ID on its trace so the merge can prove all files
// describe one run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/obs"
	"graphite/internal/serve"
	"graphite/internal/tgraph"
)

func main() {
	var (
		addr       = flag.String("addr", ":8100", "worker listen address")
		workers    = flag.Int("workers", 0, "cluster size: shards assigned, quorum required")
		graph      = flag.String("graph", "transit", `graph spec: "transit", "file:PATH", or "shard:DIR" (resolvable by every worker)`)
		dataPlane  = flag.String("data-plane", cluster.PlaneDirect, `message batch transport: "direct" (worker-to-worker mesh) or "relay" (via coordinator)`)
		algo       = flag.String("algo", "", "algorithm to run (e.g. sssp, eat, pr)")
		source     = flag.Int64("source", 0, "source vertex id (traversal algorithms)")
		target     = flag.Int64("target", 0, "target vertex id (where the algorithm uses one)")
		iterations = flag.Int("iterations", 0, "iteration budget (PageRank; 0: algorithm default)")
		ckptEvery  = flag.Int("checkpoint-every", cluster.DefaultCheckpointEvery, "durable checkpoint cadence in supersteps")
		lease      = flag.Duration("lease", cluster.DefaultLease, "worker silence tolerated before declaring it dead")
		rejoin     = flag.Duration("rejoin-timeout", cluster.DefaultRejoinTimeout, "how long a recovery waits for a replacement worker")
		maxRec     = flag.Int("max-recoveries", cluster.DefaultMaxRecoveries, "rollback-and-replay cycles before giving up (negative: unlimited)")
		httpAddr   = flag.String("http", "", "serve /healthz, /readyz, /metrics and /debug on this address")
		tracePath  = flag.String("trace", "", "write the JSONL cluster trace to this file")
		span       = flag.String("span", "", "run span ID stamped on every trace (empty: minted randomly)")
		top        = flag.Int("top", 10, "result lines to print")
		verbose    = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-coordinator", *verbose)
	if *workers <= 0 || *algo == "" {
		flag.Usage()
		os.Exit(2)
	}

	var tracer obs.Tracer
	if *tracePath != "" {
		jt, err := obs.CreateJSONLTrace(*tracePath)
		if err != nil {
			fatal(log, "open trace", err)
		}
		defer jt.Close()
		tracer = jt
	}
	reg := obs.NewRegistry()
	coord, err := cluster.New(cluster.Config{
		Workers: *workers,
		Graph:   *graph,
		Algo:    *algo,
		Params: algorithms.Params{
			Source:     tgraph.VertexID(*source),
			Target:     tgraph.VertexID(*target),
			Iterations: *iterations,
		},
		CheckpointEvery: *ckptEvery,
		Lease:           *lease,
		RejoinTimeout:   *rejoin,
		MaxRecoveries:   *maxRec,
		DataPlane:       *dataPlane,
		Registry:        reg,
		Tracer:          tracer,
		Span:            *span,
		Logger:          log,
	})
	if err != nil {
		fatal(log, "configure coordinator", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(log, "listen", err)
	}
	log.Info("coordinator up", "addr", ln.Addr().String(), "workers", *workers,
		"graph", *graph, "algo", *algo, "span", coord.Span())

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
		})
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			body := map[string]any{"status": "ready", "stats": coord.Stats()}
			code := http.StatusOK
			if err := coord.Ready(); err != nil {
				body["status"], body["reason"], code = "not_ready", err.Error(), http.StatusServiceUnavailable
			}
			writeJSON(w, code, body)
		})
		mux.Handle("/metrics", obs.MetricsHandler(reg))
		mux.Handle("/debug/cluster", coord.DebugHandler())
		mux.Handle("/debug/", obs.DebugMux(reg))
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Error("http endpoint", "err", err)
			}
		}()
		log.Info("http endpoint up", "addr", *httpAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		coord.Close()
	}()

	res, err := coord.Serve(ln)
	if err != nil {
		fatal(log, "cluster run", err)
	}
	rep := coord.Report()
	log.Info("cluster run complete", "supersteps", rep.Supersteps,
		"checkpoints", rep.Checkpoints, "recoveries", len(rep.Recoveries),
		"makespan", rep.Makespan.Round(time.Millisecond), "data_plane", rep.DataPlane)
	for _, r := range rep.Recoveries {
		log.Info("recovery", "epoch", r.Epoch, "failed_superstep", r.Failed,
			"resumed_at", r.ResumeAt, "gen", r.Gen, "replayed", r.Replayed,
			"mttr", r.MTTR.Round(time.Millisecond), "restored_bytes", r.RestoredBytes)
	}
	for _, line := range serve.FormatResult(res, *top) {
		fmt.Println(line)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
