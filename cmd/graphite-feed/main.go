// Command graphite-feed replays a text event log against a running
// graphite-serve live graph: it parses the log (the graphite-ingest format),
// groups events into batches, and POSTs each batch to
// /v1/graphs/{name}/events, where it is durably appended to the server's WAL
// and published as a new epoch.
//
// Usage:
//
//	graphite-feed -graph NAME [-server http://localhost:8090] [-input FILE]
//	              [-batch N] [-max-batches N] [-v]
//
// Events within one batch are atomic on the server: either the whole batch
// lands (one new epoch) or it is rejected and the graph is unchanged. The
// tool stops at the first rejected batch and reports the server's error.
// With -input - (the default) the log is read from stdin, so a feed can be
// driven from a pipe:
//
//	graphite-gen events ... | graphite-feed -graph g
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"graphite/internal/obs"
	"graphite/internal/serve"
	"graphite/internal/stream"
)

func main() {
	var (
		server     = flag.String("server", "http://localhost:8090", "graphite-serve base URL")
		graph      = flag.String("graph", "", "live graph name (required)")
		input      = flag.String("input", "-", `event log file ("-": stdin)`)
		batchSize  = flag.Int("batch", 256, "events per POSTed batch")
		maxBatches = flag.Int("max-batches", 0, "stop after this many batches (0: whole log)")
		verbose    = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	log := obs.CLILogger("graphite-feed", *verbose)
	if *graph == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *batchSize <= 0 {
		log.Error("batch size must be positive", "batch", *batchSize)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(log, "open input", err)
		}
		defer f.Close()
		in = f
	}

	url := strings.TrimSuffix(*server, "/") + "/v1/graphs/" + *graph + "/events"
	var (
		batch   []stream.Event
		batches int
		events  int
		lastAck serve.EventsResult
		start   = time.Now()
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		ack, err := postBatch(url, batch)
		if err != nil {
			return err
		}
		batches++
		events += len(batch)
		lastAck = ack
		log.Debug("batch accepted", "batch", batches, "events", len(batch),
			"epoch", ack.Epoch, "vertices", ack.Vertices, "edges", ack.Edges)
		batch = batch[:0]
		return nil
	}

	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := stream.ParseEvent(line)
		if err != nil {
			fatal(log, fmt.Sprintf("line %d", lineNo), err)
		}
		batch = append(batch, ev)
		if len(batch) >= *batchSize {
			if err := flush(); err != nil {
				fatal(log, "post batch", err)
			}
			if *maxBatches > 0 && batches >= *maxBatches {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(log, "read input", err)
	}
	if *maxBatches == 0 || batches < *maxBatches {
		if err := flush(); err != nil {
			fatal(log, "post batch", err)
		}
	}

	elapsed := time.Since(start)
	rate := float64(events) / max(elapsed.Seconds(), 1e-9)
	log.Info("log replayed", "graph", *graph, "batches", batches, "events", events,
		"elapsed", elapsed.Round(time.Millisecond), "events_per_sec", int64(rate),
		"epoch", lastAck.Epoch, "vertices", lastAck.Vertices, "edges", lastAck.Edges)
}

// postBatch ships one batch and decodes the ack; a non-200 response surfaces
// the server's error body.
func postBatch(url string, batch []stream.Event) (serve.EventsResult, error) {
	body, err := json.Marshal(serve.EventsRequest{Events: serve.EncodeEvents(batch)})
	if err != nil {
		return serve.EventsResult{}, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.EventsResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return serve.EventsResult{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var ack serve.EventsResult
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return serve.EventsResult{}, err
	}
	return ack, nil
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
