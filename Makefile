GO ?= go

.PHONY: all build test vet race verify chaos bench trace-smoke clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked run of the fault-tolerance and observability surfaces (the
# chaos acceptance tests and the concurrent registry tests live here).
race:
	$(GO) test -race ./internal/engine/... ./internal/chaos/... ./internal/obs/...

# The full gate: everything vetted, built, and race-tested. Long-running
# chaos tests honour -short via `make verify SHORT=-short`.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test $(SHORT) -race ./...

# The fault-injection demonstration: SSSP under seeded faults vs fault-free.
chaos:
	$(GO) run ./cmd/graphite-bench chaos

bench:
	$(GO) run ./cmd/graphite-bench -scale 1 -workers 8 all

# End-to-end tracing smoke test: run transit SSSP with a JSONL trace, then
# validate the trace (schema, superstep contiguity, totals reconciliation)
# and render the per-superstep breakdown.
TRACE ?= /tmp/graphite-trace-smoke.jsonl
trace-smoke:
	$(GO) run ./cmd/graphite-run -graph transit -algo sssp -source 0 -workers 2 -trace $(TRACE) > /dev/null
	$(GO) run ./cmd/graphite-trace -check $(TRACE)
	$(GO) run ./cmd/graphite-trace $(TRACE)

clean:
	$(GO) clean ./...
