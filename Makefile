GO ?= go

.PHONY: all build test vet race verify chaos bench clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked run of the fault-tolerance surface (the chaos acceptance
# tests live here).
race:
	$(GO) test -race ./internal/engine/... ./internal/chaos/...

# The full gate: everything vetted, built, and race-tested. Long-running
# chaos tests honour -short via `make verify SHORT=-short`.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test $(SHORT) -race ./...

# The fault-injection demonstration: SSSP under seeded faults vs fault-free.
chaos:
	$(GO) run ./cmd/graphite-bench chaos

bench:
	$(GO) run ./cmd/graphite-bench -scale 1 -workers 8 all

clean:
	$(GO) clean ./...
