GO ?= go

.PHONY: all build test vet race verify fuzz chaos bench bench-skew bench-obs trace-smoke serve-smoke cluster-smoke cluster-bench metrics-smoke stream-smoke load-smoke clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked run of the fault-tolerance, observability and serving
# surfaces (the chaos acceptance tests, the concurrent registry tests, the
# query-service concurrency tests, and the pool-aliasing test), plus the
# warp/algorithm layers whose per-worker scratch reuse must stay race-free.
race:
	$(GO) test -race ./internal/engine/... ./internal/chaos/... ./internal/cluster/... ./internal/obs/... ./internal/serve/... ./internal/warp/... ./internal/algorithms/...

# Fuzz smoke: every fuzz target in the codec, state, warp and graph-format
# layers for FUZZTIME each (Go allows one -fuzz target per invocation).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzIntervalDecode -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -run '^$$' -fuzz FuzzInt64SliceDecode -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -run '^$$' -fuzz FuzzIntervalAppendDecode -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -run '^$$' -fuzz FuzzStateSet -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzWarp -fuzztime $(FUZZTIME) ./internal/warp
	$(GO) test -run '^$$' -fuzz FuzzFormatRoundTrip -fuzztime $(FUZZTIME) ./internal/tgraph
	$(GO) test -run '^$$' -fuzz FuzzSnapshotMutation -fuzztime $(FUZZTIME) ./internal/tgraph

# The full gate: everything vetted, built, and race-tested. Long-running
# chaos tests honour -short via `make verify SHORT=-short`.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test $(SHORT) -race ./...

# The fault-injection demonstration: SSSP under seeded faults vs fault-free.
chaos:
	$(GO) run ./cmd/graphite-bench chaos

bench:
	$(GO) run ./cmd/graphite-bench -scale 1 -workers 8 all

# Scheduler skew ablation: static vs balanced-partition vs work-stealing
# compute on a heavily skewed power-law temporal graph. Records the report
# to BENCH_skew.json (and a human-readable table on stdout); the run also
# asserts bit-identical results across scheduler modes and fails otherwise.
SKEW_SCALE ?= 1
bench-skew:
	$(GO) run ./cmd/graphite-bench -scale $(SKEW_SCALE) -workers 8 -skew-json BENCH_skew.json skew

# Observability overhead guard: instrumented (registry + JSONL tracer) vs
# bare superstep cost, medians of interleaved runs. Records the report to
# BENCH_obs.json and FAILS if the overhead ratio exceeds the pinned bound
# (bench.ObsOverheadBound).
OBS_SCALE ?= 1
bench-obs:
	$(GO) run ./cmd/graphite-bench -scale $(OBS_SCALE) -workers 8 -obs-json BENCH_obs.json obs

# End-to-end tracing smoke test: run transit SSSP with a JSONL trace, then
# validate the trace (schema, superstep contiguity, totals reconciliation)
# and render the per-superstep breakdown.
TRACE ?= /tmp/graphite-trace-smoke.jsonl
trace-smoke:
	$(GO) run ./cmd/graphite-run -graph transit -algo sssp -source 0 -workers 2 -trace $(TRACE) > /dev/null
	$(GO) run ./cmd/graphite-trace -check $(TRACE)
	$(GO) run ./cmd/graphite-trace $(TRACE)

# End-to-end serving smoke test: boot an in-process query server over the
# transit example, fire a mixed burst of requests at it, and fail unless
# every request succeeds and /debug/vars shows live result-cache hits.
serve-smoke:
	$(GO) run ./cmd/graphite-loadgen -boot

# End-to-end cluster recovery smoke test: run the multi-process cluster
# runtime (coordinator + 3 worker processes), SIGKILL a worker
# mid-superstep, and fail unless the recovered result is bit-identical to
# the fault-free run. Records MTTR, replayed supersteps and restored bytes
# to BENCH_recovery.json (and a summary on stdout).
cluster-smoke:
	$(GO) run ./cmd/graphite-bench -recovery-json BENCH_recovery.json recovery

# Data-plane bench: the same partitioned PageRank on the coordinator-relay
# plane and the direct worker-to-worker mesh, both checked bit-identical
# against a single-process run. Records makespans, per-plane byte counters
# (relay bytes must be ~0 in direct mode), per-shard resident graph sizes,
# and a partition-width sweep to BENCH_cluster.json.
CLUSTER_SCALE ?= 1
cluster-bench:
	$(GO) run ./cmd/graphite-bench -scale $(CLUSTER_SCALE) -cluster-json BENCH_cluster.json cluster

# Cluster observability smoke test: a coordinator plus a crash-and-respawn
# worker fleet with per-worker /metrics endpoints and appended JSONL traces;
# fails unless every endpoint serves the expected Prometheus families and
# the N+1 traces merge into one reconciled cluster timeline whose straggler
# attribution matches /debug/cluster.
metrics-smoke:
	$(GO) test -race -run 'TestClusterObservability' -v ./internal/chaos/

# Live-graph smoke test: the WAL kill-9 durability proof (a child process is
# SIGKILLed mid-ingest and the replayed graph must match acked batches
# byte-for-byte), the concurrent ingest-vs-query race check, then the stream
# experiment — durable ingest throughput, replay cost, and incremental
# (seeded) vs cold recomputation with bit-identity enforced. Records the
# report to BENCH_stream.json (and a human-readable table on stdout).
STREAM_SCALE ?= 1
stream-smoke:
	$(GO) test -race -run 'TestWALSurvivesSIGKILL' -v ./internal/chaos/
	$(GO) test -race -run 'TestConcurrentIngestAndQueries|TestLiveMutation' -v ./internal/serve/
	$(GO) run ./cmd/graphite-bench -scale $(STREAM_SCALE) -workers 8 -stream-json BENCH_stream.json stream

# Snapshot-format smoke test: the load experiment (text vs binary vs mapped
# .gsn opens, with a hard >= 10x mmap-vs-text gate, algorithm identity on
# the mapped graph, and compacted-vs-full WAL recovery), plus the kill-9
# during-compaction chaos proof. Records the report to BENCH_load.json.
LOAD_SCALE ?= 1
load-smoke:
	$(GO) test -race -run 'TestCompactionSurvivesSIGKILL' -v ./internal/chaos/
	$(GO) run ./cmd/graphite-bench -scale $(LOAD_SCALE) -load-json BENCH_load.json load

clean:
	$(GO) clean ./...
