package graphite_test

import (
	"fmt"

	"graphite"
)

// The paper's running example: temporal SSSP over the Fig. 1 transit
// network finds, per interval of arrival time, the cheapest time-respecting
// journey.
func ExampleRunSSSP() {
	g := graphite.TransitExample()
	r, err := graphite.RunSSSP(g, 0, 0, 2)
	if err != nil {
		panic(err)
	}
	for _, c := range graphite.SSSPCosts(r, 4) { // stop E
		fmt.Printf("reach E within %v at cost %d\n", c.Interval, c.Value)
	}
	// Output:
	// reach E within [6, 9) at cost 7
	// reach E within [9, ∞) at cost 5
}

// The time-warp operator aligns interval messages with partitioned vertex
// states; this is the superstep-3 walkthrough of the paper's Fig. 2.
func ExampleWarp() {
	states := []graphite.WarpInput{{Interval: graphite.Universe, Value: "∞"}}
	msgs := []graphite.WarpInput{
		{Interval: graphite.From(9), Value: 5},
		{Interval: graphite.From(6), Value: 7},
	}
	for _, tu := range graphite.Warp(states, msgs) {
		fmt.Printf("compute(%v, %v, %v)\n", tu.Interval, tu.State, tu.Msgs)
	}
	// Output:
	// compute([6, 9), ∞, [7])
	// compute([9, ∞), ∞, [5 7])
}

// Earliest arrival time answers "when can I first get there?"; the fixture's
// stop F is unreachable because its only inbound connection departs before
// any journey can arrive.
func ExampleRunEAT() {
	g := graphite.TransitExample()
	r, err := graphite.RunEAT(g, 0, 0, 2)
	if err != nil {
		panic(err)
	}
	for id := graphite.VertexID(0); id < 6; id++ {
		if at := graphite.EarliestArrival(r, id); at != graphite.Unreachable {
			fmt.Printf("stop %d: t=%d\n", id, at)
		}
	}
	// Output:
	// stop 0: t=0
	// stop 1: t=4
	// stop 2: t=2
	// stop 3: t=5
	// stop 4: t=6
}
